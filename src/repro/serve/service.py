"""The permutation-serving hot path: admission, batching, execution.

:class:`PermutationService` turns the compiled bit-packed engine into a
request server.  The life of a request:

1. **Validate** — :func:`~repro.serve.model.validate_request`; malformed
   requests raise :class:`~repro.errors.InvalidRequestError` before
   touching any shared state.
2. **Resolve randomness** — a ``random_perm`` draws its index from the
   service's per-``n`` scaled-LFSR source (§II-C: "the index generator
   is simply a random number generator"), after which it is an unrank.
3. **Cache** — deterministic results are looked up in a bounded LRU
   keyed ``(workload, n, index)``; a hit returns a completed future
   without ever entering the batcher.
4. **Admit** — if the batcher already holds ``max_queue_depth`` entries
   the request is *shed* with
   :class:`~repro.errors.ServiceOverloadedError` (admission control: the
   queue, and with it every accepted request's latency, stays bounded).
5. **Batch** — the request joins its ``(engine, n)`` group in the
   micro-batcher.  The group flushes when it reaches ``max_batch`` lanes
   (executed inline on the submitting thread — no handoff latency) or
   when the group's deadline expires (executed by the dispatcher
   thread).
6. **Sweep** — the whole batch rides one compiled sweep; per-lane
   results resolve the futures, with per-stage timings and the batch id
   attached to every response.

Everything observable is recorded when the global metrics registry is
enabled: request counters by workload/outcome, queue-depth gauge, lane
histogram, per-stage latency histograms on the sub-millisecond
:data:`~repro.obs.metrics.FAST_LATENCY_BUCKETS`, and cache hit/miss
counters, and an end-to-end latency *digest*
(:class:`~repro.obs.digests.LatencyDigest` per workload/mode) whose
log-bucketed grid keeps p99/p99.9 honest where fixed edges cannot.
With a :class:`~repro.obs.tracing.Tracer` attached, every *sampled*
batch (the tracer's sampler decides once per batch) becomes a
``serve.batch`` span with one child span per request, and the batch
span is threaded through :meth:`PermutationService._run_sweep` so
supervised tiers hang their failover/fallback spans off the same
``trace_id`` — a response's ``batch_id`` links it to its exact sweep in
the trace.

:func:`serve_bulk` is the offline cousin: a large index array is split
into sweep-quantum-sized shards (one shard per sweep, the quantum
reported by the selected engine's capability record) and dispatched
across worker processes through the hardened map-reduce runner,
inheriting its retry/timeout machinery.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

import numpy as np

from repro.core.factorial import factorial, index_width
from repro.errors import (
    ServiceDegradedError,
    ServiceOverloadedError,
    ServiceShutdownError,
)
from repro.hdl.engine import resolve_backend
from repro.obs import metrics as _metrics
from repro.obs.metrics import FAST_LATENCY_BUCKETS
from repro.obs.tracing import Span, Tracer
from repro.parallel.sharding import bounded_shards, hardened_map_reduce
from repro.rng.lfsr import FibonacciLFSR, dense_seed
from repro.rng.scaled import ScaledRandomInteger
from repro.serve.batcher import Batch, MicroBatcher, PendingEntry
from repro.serve.cache import ResultCache
from repro.serve.engine import ConverterEngine, EngineBank
from repro.serve.model import (
    Request,
    Response,
    WideResponse,
    validate_request,
    validate_wide,
)

__all__ = [
    "CompletionFuture",
    "ServiceConfig",
    "PermutationService",
    "serve_bulk",
    "batch_indices",
]

# Injectable clock seam (monotonic), mirroring parallel.sharding: all
# deadline arithmetic goes through this so tests can drive it.
_monotonic = time.monotonic

_REQUESTS = _metrics.REGISTRY.counter(
    "repro_serve_requests_total",
    "serving requests by workload and outcome",
    ("workload", "outcome"),
)
_QUEUE_DEPTH = _metrics.REGISTRY.gauge(
    "repro_serve_queue_depth", "entries currently queued in the micro-batcher"
)
_BATCH_LANES = _metrics.REGISTRY.histogram(
    "repro_serve_batch_lanes",
    "lanes per executed batch",
    # spans every engine's sweep quantum: the compiled engine tops out
    # at one 64-bit word of lanes, the vector engine at 4096
    buckets=(1, 2, 4, 8, 16, 32, 64, 256, 1024, 4096),
)
_STAGE_SECONDS = _metrics.REGISTRY.histogram(
    "repro_serve_stage_seconds",
    "per-request serving stage latency (queued / sweep) in seconds; "
    "end-to-end totals live in repro_serve_latency_seconds",
    ("stage",),
    buckets=FAST_LATENCY_BUCKETS,
)
_CACHE_TOTAL = _metrics.REGISTRY.counter(
    "repro_serve_cache_total", "result cache lookups by result", ("result",)
)
_MODE_TOTAL = _metrics.REGISTRY.counter(
    "repro_serve_mode_total",
    "responses by serving mode (degradation-ladder rung)",
    ("mode",),
)
_LATENCY_DIGEST = _metrics.REGISTRY.digest(
    "repro_serve_latency_seconds",
    "end-to-end request latency digest (log-bucketed; p50/p90/p99/p99.9)",
    ("workload", "mode"),
)


class _TelemetryFlusher(threading.Thread):
    """Folds per-batch telemetry into the registry off the hot path.

    The dispatcher already walks every batch entry to build responses;
    the per-entry telemetry cost it pays is two list appends.  The
    expensive part — label resolution, histogram/digest folds, counter
    increments over those value lists — is handed over here as one
    record per batch and folded on this daemon thread, so a scrape sees
    the same numbers a few hundred microseconds later but the serving
    loop never waits on a bucket fold.  Records fold in submission
    order (single consumer, FIFO deque), and :meth:`close` drains the
    queue before returning, so anything observed after
    ``service.close()`` is complete and ordered.
    """

    def __init__(self) -> None:
        super().__init__(name="serve-telemetry", daemon=True)
        self._queue: deque[tuple] = deque()
        self._wake = threading.Event()
        self._stopping = False
        self.start()

    def put(self, record: tuple) -> None:
        self._queue.append(record)
        self._wake.set()

    def run(self) -> None:
        queue = self._queue
        while True:
            self._wake.wait()
            self._wake.clear()
            while queue:
                self._fold(queue.popleft())
            if self._stopping and not queue:
                return

    def close(self) -> None:
        """Stop the flusher after draining every queued record."""
        self._stopping = True
        self._wake.set()
        self.join()
        while self._queue:  # records enqueued after the final wake
            self._fold(self._queue.popleft())

    @staticmethod
    def _fold(record: tuple) -> None:
        (
            lanes,
            entries,
            front_misses,
            mode,
            sweep_s,
            queued_vals,
            workload_totals,
            pending,
        ) = record
        _BATCH_LANES.observe(lanes)
        _MODE_TOTAL.inc(entries, mode=mode)
        _STAGE_SECONDS.labels(stage="queued").observe_many(queued_vals)
        _STAGE_SECONDS.labels(stage="sweep").observe_n(sweep_s, entries)
        for wl, totals in workload_totals.items():
            _LATENCY_DIGEST.labels(workload=wl, mode=mode).observe_many(totals)
            _REQUESTS.inc(len(totals), workload=wl, outcome="ok")
        if front_misses:
            # entries that consulted the front cache at admission and
            # missed (hits resolve inline in submit; wide entries with
            # count > 1 never consult the front tier, so they are not
            # counted — the worker-tier cache accounts for them)
            _CACHE_TOTAL.inc(front_misses, result="miss")
        _QUEUE_DEPTH.set(pending)


class CompletionFuture:
    """Single-assignment result slot for one served request.

    Covers the slice of :class:`concurrent.futures.Future` the service
    needs (``done`` / ``result`` / errors raised on ``result``), but
    shares the service's condition variable instead of allocating a
    private reentrant lock per instance — that per-``Future`` lock
    allocation was the single largest per-request overhead on the
    batched hot path.  Resolution happens under the shared condition
    (:meth:`_finish`), so one ``notify_all`` settles a whole batch.
    """

    __slots__ = ("_cond", "_value", "_exc", "_done", "_callbacks")

    def __init__(self, cond: threading.Condition) -> None:
        self._cond = cond
        self._value: Response | None = None
        self._exc: BaseException | None = None
        self._done = False
        self._callbacks: list | None = None

    def done(self) -> bool:
        return self._done

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` once resolved — immediately if already done.

        The bridge the asyncio front end needs: instead of parking a
        waiter thread per in-flight frame, the connection handler hangs
        a ``loop.call_soon_threadsafe`` trampoline here and the batch
        that resolves the future pokes the event loop.  Callbacks run on
        the *resolving* thread (dispatcher / sweep executor) with the
        service condition held, so they must be fast and non-blocking;
        exceptions are swallowed — a callback must never be able to kill
        the batch that happened to resolve it.
        """
        with self._cond:
            if not self._done:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(fn)
                return
        fn(self)

    def _finish(self, value: Response | None, exc: BaseException | None) -> None:
        """Resolve; the caller must hold the shared condition."""
        self._value = value
        self._exc = exc
        self._done = True
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for fn in callbacks:
                try:
                    fn(self)
                except Exception:  # noqa: BLE001 - see add_done_callback
                    pass

    def result(self, timeout: float | None = None) -> Response:
        # ``_done`` is written under the condition but read here without
        # it: the flag flips once, and a stale False only sends us down
        # the locked slow path.
        if not self._done:
            with self._cond:
                if timeout is None:
                    while not self._done:
                        self._cond.wait()
                else:
                    deadline = _monotonic() + timeout
                    while not self._done:
                        left = deadline - _monotonic()
                        if left <= 0:
                            raise FutureTimeoutError()
                        self._cond.wait(left)
        if self._exc is not None:
            raise self._exc
        return self._value  # type: ignore[return-value]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`PermutationService`.

    ``engine`` selects the simulation backend through the registry
    (:mod:`repro.hdl.engine`); the engine's capability record sets the
    *sweep quantum* — the lane capacity of one sweep.  ``max_batch``
    defaults to that quantum and is capped at it: admitting more
    requests than one sweep carries would only add deadline latency.
    With the default ``"auto"`` engine the quantum is the compiled
    engine's 63 lanes (one 64-bit word per packed lane-set);
    ``engine="vector"`` lifts it to 4096.  ``batch_deadline_s`` bounds
    how long a lone request waits for company; ``max_queue_depth``
    (default 4x the quantum) bounds how many requests may be queued
    before admission control sheds.  ``max_n`` bounds the netlists one
    request can make the service compile.
    """

    max_batch: "int | None" = None
    batch_deadline_s: float = 0.002
    max_queue_depth: "int | None" = None
    cache_capacity: int = 4096
    max_n: int = 12
    rng_seed: int = 0
    shuffle_m: int = 31
    engine: str = "auto"

    @property
    def sweep_quantum(self) -> int:
        """Lane capacity of one sweep under the configured engine."""
        return resolve_backend(self.engine).capabilities.sweep_lanes

    def __post_init__(self) -> None:
        quantum = self.sweep_quantum  # validates the engine name too
        if self.max_batch is None:
            object.__setattr__(self, "max_batch", quantum)
        if self.max_queue_depth is None:
            object.__setattr__(self, "max_queue_depth", 4 * quantum)
        assert self.max_batch is not None and self.max_queue_depth is not None
        if not (1 <= self.max_batch <= quantum):
            raise ValueError(f"max_batch must be in 1..{quantum}")
        if self.batch_deadline_s < 0:
            raise ValueError("batch_deadline_s must be non-negative")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if self.max_n < 1:
            raise ValueError("max_n must be positive")


class PermutationService:
    """Batch-serving front end over the compiled permutation engines."""

    def __init__(self, config: ServiceConfig | None = None, tracer: Tracer | None = None):
        self.config = config or ServiceConfig()
        self.tracer = tracer
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._batcher = MicroBatcher(
            self.config.max_batch, self.config.batch_deadline_s
        )
        self._cache = ResultCache(self.config.cache_capacity)
        self._engines = EngineBank(
            shuffle_m=self.config.shuffle_m,
            shuffle_seed_salt=self.config.rng_seed,
            backend=self.config.engine,
        )
        # per-group execution locks: batches of one engine run serially
        # (the shuffle engine advances LFSR state per sweep), batches of
        # different engines in parallel
        self._engine_locks: dict[tuple[str, int], threading.Lock] = {}
        self._index_sources: dict[int, ScaledRandomInteger] = {}
        self._next_request_id = 0
        self._shed = 0
        self._degraded_shed = 0
        self._completed = 0
        self._closed = False
        # started lazily by _execute on the first metrics-enabled batch;
        # only the dispatcher thread creates it, so no lock is needed
        self._telemetry: _TelemetryFlusher | None = None
        self._dispatcher = threading.Thread(
            target=self._run_dispatcher, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # lifecycle

    def close(self) -> None:
        """Drain every queued batch, then stop the dispatcher.

        Shutdown settles **every** pending future: the dispatcher's
        final pass flushes whatever the batcher holds (each entry
        resolves with its response, or with the error its batch hit),
        and any entry still queued after the dispatcher exits — which
        can only happen if the dispatcher itself died — is failed with
        :class:`~repro.errors.ServiceShutdownError`.  No waiter is ever
        left hung on a closed service.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()
        # pooled tiers run batches on executor threads: wait for every
        # in-flight sweep to settle its futures before declaring the
        # leftovers dead and closing telemetry
        self._drain_executors()
        self._fail_pending(ServiceShutdownError("service closed before execution"))
        if self._telemetry is not None:
            # dispatcher is down, so no new records: drain and stop
            self._telemetry.close()

    def _fail_pending(self, exc: BaseException) -> None:
        """Settle every still-queued entry with ``exc`` (shutdown belt)."""
        with self._cond:
            leftovers = self._batcher.take_all()
            if not leftovers:
                return
            for batch in leftovers:
                for e in batch.entries:
                    e.future._finish(None, exc)
            self._cond.notify_all()
        if _metrics.REGISTRY.enabled:
            for batch in leftovers:
                for e in batch.entries:
                    _REQUESTS.inc(workload=e.request.workload, outcome="error")

    def __enter__(self) -> "PermutationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # submission

    def submit(self, request: Request) -> CompletionFuture:
        """Admit one request; returns a future for its response.

        Raises :class:`~repro.errors.InvalidRequestError` on malformed
        input, :class:`~repro.errors.ServiceOverloadedError` when the
        queue is at ``max_queue_depth`` (the request was shed — back off
        and retry), :class:`~repro.errors.ServiceDegradedError` when a
        supervised tier has degraded this request's shard past the rung
        that could serve it, and :class:`~repro.errors.ServiceShutdownError`
        on a closed service.  The future resolves when the request's
        batch executes; a cache hit returns an already-resolved future.
        """
        validate_request(request, self.config.max_n)
        metrics_on = _metrics.REGISTRY.enabled
        t_submit = time.perf_counter()
        run_inline: list[Batch] = []
        with self._cond:
            if self._closed:
                raise ServiceShutdownError("service is closed")
            request_id = self._next_request_id
            self._next_request_id += 1
            workload, n = request.workload, request.n
            key = ("shuffle", n) if workload == "shuffle" else ("converter", n)
            index = request.index
            if workload == "random_perm":
                index = self._draw_index(n)
            future = CompletionFuture(self._cond)
            if workload != "shuffle":
                cached = self._cache.get(("unrank", n, index))
                if cached is not None:
                    if metrics_on:
                        _CACHE_TOTAL.inc(result="hit")
                        _REQUESTS.inc(workload=workload, outcome="ok")
                    total = time.perf_counter() - t_submit
                    # the future is not visible to any other thread yet,
                    # so resolving it needs no notify
                    future._finish(
                        Response(
                            request_id=request_id,
                            workload=workload,
                            n=n,
                            index=index,
                            permutation=cached,  # type: ignore[arg-type]
                            batch_id=None,
                            lanes=0,
                            cached=True,
                            queued_s=0.0,
                            sweep_s=0.0,
                            total_s=total,
                            mode="cached",
                        ),
                        None,
                    )
                    if metrics_on:
                        _MODE_TOTAL.inc(mode="cached")
                        _LATENCY_DIGEST.observe(
                            total, workload=workload, mode="cached"
                        )
                    return future
                # misses are counted at batch granularity in _execute:
                # every admitted converter-batch entry was a miss here
            try:
                # Supervised tiers veto here when the shard's degradation
                # ladder has stepped down to cache-only: hits (above)
                # still serve, everything else is shed with a typed
                # signal the client can distinguish from overload.
                # Pooled tiers also raise ServiceOverloadedError here
                # when the shard's worker queue is saturated — counted
                # as a shed, exactly like the batcher-depth shed below.
                self._degrade_gate(workload, key)
            except ServiceDegradedError:
                self._degraded_shed += 1
                if metrics_on:
                    _REQUESTS.inc(workload=workload, outcome="degraded")
                raise
            except ServiceOverloadedError:
                self._shed += 1
                if metrics_on:
                    _REQUESTS.inc(workload=workload, outcome="shed")
                raise
            depth = self._batcher.pending
            if depth >= self.config.max_queue_depth:
                self._shed += 1
                if metrics_on:
                    _REQUESTS.inc(workload=workload, outcome="shed")
                raise ServiceOverloadedError(
                    f"queue depth {depth} at limit; request shed",
                    queue_depth=depth,
                    limit=self.config.max_queue_depth,
                )
            entry = PendingEntry(
                request=_Admitted(request_id, workload, n, index, t_submit),
                future=future,
                enqueued_at=_monotonic(),
            )
            was_empty = self._batcher.pending == 0
            run_inline = self._batcher.add(key, entry, entry.enqueued_at)
            if not run_inline and was_empty:
                # The dispatcher only needs waking when it had nothing
                # to wait for: any later-opened group's deadline is by
                # construction later than the one it is already armed
                # on, so per-request notifies would be pure wakeup
                # overhead on the hot path.
                self._cond.notify_all()
        for batch in run_inline:
            self._execute(batch)
        return future

    def submit_wide(
        self,
        workload: str,
        n: int,
        count: int,
        indices=None,
    ) -> CompletionFuture:
        """Admit one *wide* request: ``count`` lanes behind one future.

        The network front end's amortisation primitive — one socket
        frame carrying ``count`` indices becomes a single batcher entry
        occupying ``count`` sweep lanes, so the per-request admission
        cost (validation, locking, future allocation) is paid once per
        frame instead of once per lane.  The future resolves to a
        :class:`~repro.serve.model.WideResponse` whose ``permutations``
        is a ``(count, n)`` array.  Raises exactly the same taxonomy as
        :meth:`submit`.  A ``count == 1`` deterministic request checks
        the front result cache like ``submit`` does; wider requests skip
        the front tier (the pooled path's worker-side caches handle
        them) so front hit/miss accounting never double-counts.
        """
        validate_wide(
            workload, n, count, indices, self.config.max_n, self.config.max_batch
        )
        metrics_on = _metrics.REGISTRY.enabled
        t_submit = time.perf_counter()
        run_inline: list[Batch] = []
        with self._cond:
            if self._closed:
                raise ServiceShutdownError("service is closed")
            request_id = self._next_request_id
            self._next_request_id += 1
            key = ("shuffle", n) if workload == "shuffle" else ("converter", n)
            idx: tuple[int, ...] | None
            if workload == "unrank":
                idx = tuple(int(i) for i in indices)
            elif workload == "random_perm":
                idx = tuple(self._draw_index(n) for _ in range(count))
            else:
                idx = None
            future = CompletionFuture(self._cond)
            if count == 1 and workload != "shuffle":
                cached = self._cache.get(("unrank", n, idx[0]))
                if cached is not None:
                    if metrics_on:
                        _CACHE_TOTAL.inc(result="hit")
                        _REQUESTS.inc(workload=workload, outcome="ok")
                    total = time.perf_counter() - t_submit
                    future._finish(
                        WideResponse(
                            request_id=request_id,
                            workload=workload,
                            n=n,
                            count=1,
                            indices=idx,
                            permutations=np.asarray([cached], dtype=np.int64),
                            batch_id=None,
                            lanes=0,
                            cached=True,
                            queued_s=0.0,
                            sweep_s=0.0,
                            total_s=total,
                            mode="cached",
                        ),
                        None,
                    )
                    if metrics_on:
                        _MODE_TOTAL.inc(mode="cached")
                        _LATENCY_DIGEST.observe(total, workload=workload, mode="cached")
                    return future
            try:
                self._degrade_gate(workload, key)
            except ServiceDegradedError:
                self._degraded_shed += 1
                if metrics_on:
                    _REQUESTS.inc(workload=workload, outcome="degraded")
                raise
            except ServiceOverloadedError:
                self._shed += 1
                if metrics_on:
                    _REQUESTS.inc(workload=workload, outcome="shed")
                raise
            depth = self._batcher.pending
            # a lone wide entry always admits (liveness even when count
            # exceeds the depth limit); with company, shed on projected
            # lane depth so wide traffic respects the same bound
            if depth > 0 and depth + count > self.config.max_queue_depth:
                self._shed += 1
                if metrics_on:
                    _REQUESTS.inc(workload=workload, outcome="shed")
                raise ServiceOverloadedError(
                    f"queue depth {depth}+{count} over limit; request shed",
                    queue_depth=depth,
                    limit=self.config.max_queue_depth,
                )
            entry = PendingEntry(
                request=_AdmittedWide(request_id, workload, n, count, idx, t_submit),
                future=future,
                enqueued_at=_monotonic(),
                lanes=count,
            )
            was_empty = self._batcher.pending == 0
            run_inline = self._batcher.add(key, entry, entry.enqueued_at)
            if not run_inline and was_empty:
                self._cond.notify_all()
        for batch in run_inline:
            self._execute(batch)
        return future

    def convert(self, request: Request, timeout: float | None = 10.0) -> Response:
        """Blocking convenience wrapper: submit and wait."""
        return self.submit(request).result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # statistics

    def stats(self) -> dict:
        with self._lock:
            return {
                "submitted": self._next_request_id,
                "completed": self._completed,
                "shed": self._shed,
                "degraded_shed": self._degraded_shed,
                "queued": self._batcher.pending,
                "cache_hits": self._cache.hits,
                "cache_misses": self._cache.misses,
                "cache_entries": len(self._cache),
            }

    # ------------------------------------------------------------------ #
    # internals

    def _draw_index(self, n: int) -> int:
        """One random index in ``0..n!−1`` from the per-``n`` source.

        The source is the paper's own index generator: a scaled-LFSR
        random integer with ``k = n!``.  The LFSR width extends the
        index width by 8 bits (floored at 31, the paper's generator) so
        the §III-A pigeonhole bias stays below 1/256.
        """
        source = self._index_sources.get(n)
        if source is None:
            m = max(31, index_width(n) + 8)
            source = ScaledRandomInteger(
                factorial(n),
                lfsr=FibonacciLFSR(m, seed=dense_seed(m, salt=self.config.rng_seed + n)),
            )
            self._index_sources[n] = source
        return source.next_int()

    def _engine_lock(self, key: tuple[str, int]) -> threading.Lock:
        lock = self._engine_locks.get(key)
        if lock is None:
            lock = self._engine_locks.setdefault(key, threading.Lock())
        return lock

    def _degrade_gate(self, workload: str, key: tuple[str, int]) -> None:
        """Admission veto hook for degraded shards.

        The base service never degrades — every admitted request is
        served by its in-process engine — so this is a no-op.  The
        supervised tier overrides it to raise
        :class:`~repro.errors.ServiceDegradedError` for shards pinned in
        cache-only mode; the pooled tier additionally raises
        :class:`~repro.errors.ServiceOverloadedError` when the shard's
        worker queue is saturated (per-shard backpressure).
        """

    def _drain_executors(self) -> None:
        """Shutdown hook: wait for out-of-band batch executors.

        The base service executes batches on the submitting thread or
        the dispatcher, both already settled by the time ``close()``
        reaches this point — no-op.  The pooled tier overrides it to
        join its sweep-executor thread pool.
        """

    def _run_sweep(self, batch: Batch, kind: str, n: int, span: Span | None = None):
        """Execute one closed batch's sweep → ``(perms, mode)``.

        The execution seam of the serving layer: everything above it
        (admission, batching, futures, caching, per-request metrics) is
        shared between tiers, everything below it is how a sweep
        actually runs.  The base implementation runs the engine-bank
        engine in-process (mode ``"direct"``); the supervised tier
        overrides it to route the sweep through its worker/fallback
        degradation ladder and returns the rung that served it.

        ``span`` is the batch's (sampled) trace span, or ``None`` for an
        unsampled batch: tiers attach their execution detail — worker
        attempts, failovers, fallback rungs — as children so the whole
        ladder shares the batch's ``trace_id``.
        """
        with self._lock:
            engine = self._engines.for_key(batch.key)
        with self._engine_lock(batch.key):
            if kind == "shuffle":
                return engine.run(batch.lanes), "direct"
            return engine.run(batch_indices(batch)), "direct"

    def _run_dispatcher(self) -> None:
        """Deadline loop: flush groups whose batching window expired.

        The loop itself must never die with futures in flight: if
        anything escapes :meth:`_execute` (which already converts sweep
        failures into failed futures), the remaining queue is settled
        with :class:`~repro.errors.ServiceShutdownError` before the
        thread exits, so no waiter can hang on a dead dispatcher.
        """
        try:
            while True:
                with self._cond:
                    while True:
                        now = _monotonic()
                        due = (
                            self._batcher.take_all()
                            if self._closed
                            else self._batcher.take_due(now)
                        )
                        if due:
                            if _metrics.REGISTRY.enabled:
                                _QUEUE_DEPTH.set(self._batcher.pending)
                            break
                        if self._closed:
                            return
                        deadline = self._batcher.next_deadline()
                        self._cond.wait(
                            None if deadline is None else max(0.0, deadline - now)
                        )
                for batch in due:
                    self._execute(batch)
        except BaseException:  # pragma: no cover - dispatcher bug guard
            self._fail_pending(
                ServiceShutdownError("serving dispatcher died; request dropped")
            )
            raise

    def _execute(self, batch: Batch) -> None:
        """Run one closed batch through its engine and resolve futures."""
        metrics_on = _metrics.REGISTRY.enabled
        # Head-sampling happens here, once per batch: an unsampled batch
        # pays one sampler call and never constructs a span.
        span = (
            self.tracer.sampled_root(
                "serve.batch", batch_id=batch.batch_id, lanes=batch.lanes
            )
            if self.tracer is not None
            else None
        )
        kind, n = batch.key
        exec_start = time.perf_counter()
        try:
            perms, mode = self._run_sweep(batch, kind, n, span)
        except BaseException as exc:
            outcome = (
                "degraded" if isinstance(exc, ServiceDegradedError) else "error"
            )
            with self._cond:
                for e in batch.entries:
                    e.future._finish(None, exc)
                self._cond.notify_all()
            if metrics_on:
                by_workload: dict[str, int] = {}
                for e in batch.entries:
                    wl = e.request.workload
                    by_workload[wl] = by_workload.get(wl, 0) + 1
                for wl, c in by_workload.items():
                    _REQUESTS.inc(c, workload=wl, outcome=outcome)
            if span is not None:
                span.end("error", error=f"{type(exc).__name__}: {exc}")
                with self._lock:
                    self.tracer.adopt(span)
            return
        sweep_s = time.perf_counter() - exec_start
        done = time.perf_counter()
        responses = []
        front_misses = 0
        if metrics_on:
            # Per-entry telemetry is two list appends; everything else —
            # label resolution, histogram/digest folds, counter incs —
            # is handed to the _TelemetryFlusher thread as one record
            # per batch below the loop.  That discipline is what keeps
            # enabled-telemetry overhead inside the ≤5% serving budget
            # (see bench_serving's overhead assertion).
            queued_vals: list[float] = []
            workload_totals: dict[str, list[float]] = {}
        off = 0  # first sweep lane of the current entry
        for e in batch.entries:
            adm = e.request
            queued = max(0.0, exec_start - adm.submitted_at)
            total = done - adm.submitted_at
            if type(adm) is _Admitted:
                perm = tuple(int(v) for v in perms[off])
                off += 1
                resp = Response(
                    request_id=adm.request_id,
                    workload=adm.workload,
                    n=adm.n,
                    index=adm.index,
                    permutation=perm,
                    batch_id=batch.batch_id,
                    lanes=batch.lanes,
                    cached=False,
                    queued_s=queued,
                    sweep_s=sweep_s,
                    total_s=total,
                    mode=mode,
                )
                if kind == "converter":
                    front_misses += 1
            else:
                # wide entry: its rows stay an ndarray slice — the
                # socket encoder packs them straight into wire bytes
                rows = perms[off : off + adm.count]
                off += adm.count
                resp = WideResponse(
                    request_id=adm.request_id,
                    workload=adm.workload,
                    n=adm.n,
                    count=adm.count,
                    indices=adm.indices,
                    permutations=rows,
                    batch_id=batch.batch_id,
                    lanes=batch.lanes,
                    cached=False,
                    queued_s=queued,
                    sweep_s=sweep_s,
                    total_s=total,
                    mode=mode,
                )
                if kind == "converter" and adm.count == 1:
                    front_misses += 1
            responses.append((e.future, resp))
            if metrics_on:
                queued_vals.append(queued)
                wt = workload_totals.get(adm.workload)
                if wt is None:
                    wt = workload_totals[adm.workload] = []
                wt.append(total)
            if span is not None:
                # pre-finished record children: the sweep already timed
                # the work, so the child skips all four clock reads
                span.child_record(
                    "serve.request",
                    wall_s=total,
                    request_id=adm.request_id,
                    workload=adm.workload,
                    n=adm.n,
                    batch_id=batch.batch_id,
                )
        if metrics_on:
            # one handoff per batch: mode and sweep time are uniform
            # within a batch, and the per-entry value lists fold into
            # the histograms/digests on the flusher thread (queue depth
            # is likewise sampled once per batch — a dashboard scrape
            # cannot tell the difference, the hot path can)
            if self._telemetry is None:
                self._telemetry = _TelemetryFlusher()
            self._telemetry.put(
                (
                    batch.lanes,
                    len(batch.entries),
                    front_misses,
                    mode,
                    sweep_s,
                    queued_vals,
                    workload_totals,
                    self._batcher.pending,
                )
            )
        with self._cond:
            if kind == "converter":
                for _, resp in responses:
                    if type(resp) is Response:
                        self._cache.put(
                            ("unrank", resp.n, resp.index), resp.permutation
                        )
                    elif resp.count == 1:
                        # symmetric with the count==1 get in submit_wide;
                        # wider entries stay out of the front tier
                        self._cache.put(
                            ("unrank", resp.n, resp.indices[0]),
                            tuple(int(v) for v in resp.permutations[0]),
                        )
            self._completed += len(responses)
            for future, resp in responses:
                future._finish(resp, None)
            self._cond.notify_all()
        if span is not None:
            # end + export outside the condition lock: adopt() walks and
            # serialises the whole span tree, and nothing below needs
            # the service state
            span.end("ok")
            self.tracer.adopt(span)


@dataclass(frozen=True)
class _Admitted:
    """An admitted request with its server-resolved index and timestamps."""

    request_id: int
    workload: str
    n: int
    index: int | None
    submitted_at: float

    def lane_indices(self) -> tuple:
        return (self.index,)


@dataclass(frozen=True)
class _AdmittedWide:
    """An admitted wide request: ``count`` lanes, one future."""

    request_id: int
    workload: str
    n: int
    count: int
    indices: tuple[int, ...] | None
    submitted_at: float

    def lane_indices(self) -> tuple:
        return self.indices  # type: ignore[return-value]


def batch_indices(batch: Batch) -> list[int]:
    """Flatten a converter batch's entries into per-lane indices.

    Single entries contribute one index, wide entries ``count`` — the
    flat list lines up with the sweep's lane order, which is how
    ``_execute`` slices the result rows back out.
    """
    return [i for e in batch.entries for i in e.request.lane_indices()]


# ---------------------------------------------------------------------- #
# offline bulk path


class _BulkShard:
    """Picklable shard worker: unrank a contiguous slice of the indices.

    Each worker process memoises one :class:`ConverterEngine` per
    ``(n, engine)`` (module-level, so repeated shards in the same
    process pay the netlist build once) and returns its shard's
    ``(size, n)`` rows.
    """

    def __init__(self, n: int, indices: tuple[int, ...], engine: str = "auto"):
        self.n = n
        self.indices = indices
        self.engine = engine

    def __call__(self, shard) -> np.ndarray:
        engine = _bulk_engine(self.n, self.engine)
        return engine.run(self.indices[shard.start : shard.stop])


_BULK_ENGINES: dict[tuple[int, str], ConverterEngine] = {}


def _bulk_engine(n: int, backend: str = "auto") -> ConverterEngine:
    key = (n, backend)
    engine = _BULK_ENGINES.get(key)
    if engine is None:
        engine = _BULK_ENGINES[key] = ConverterEngine(n, backend=backend)
    return engine


def _stack_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.concatenate([a, b], axis=0)


def serve_bulk(
    n: int,
    indices,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    tracer: Tracer | None = None,
    engine: str = "auto",
) -> np.ndarray:
    """Unrank a whole index array offline → ``(len(indices), n)`` rows.

    The batch is cut into sweep-quantum-lane shards — each exactly one
    sweep of the selected ``engine``, 63 lanes compiled / 4096 vector —
    and dispatched through
    :func:`~repro.parallel.sharding.hardened_map_reduce`, inheriting its
    retry/timeout/backoff behaviour.  Results are concatenated in shard
    order, so the output row order always matches the input regardless
    of worker count.
    """
    idx = tuple(int(i) for i in indices)
    limit = factorial(n)
    for i in idx:
        if not (0 <= i < limit):
            raise ValueError(f"index {i} outside 0..{limit - 1} for n={n}")
    if not idx:
        return np.empty((0, n), dtype=np.int64)
    quantum = resolve_backend(engine).capabilities.sweep_lanes
    shards = bounded_shards(len(idx), quantum)
    return hardened_map_reduce(
        _BulkShard(n, idx, engine),
        shards,
        _stack_rows,
        workers=workers,
        timeout=timeout,
        retries=retries,
        tracer=tracer,
    )
