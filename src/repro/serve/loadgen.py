"""Synthetic closed-loop load generator for the serving layer.

Closed-loop means each simulated client keeps exactly one request in
flight: it submits, waits for the response, records the latency, and
immediately submits again.  Offered load therefore scales with the
client count and never runs away from the service — the honest way to
measure a batching layer, because an open-loop generator with a fixed
rate either underfills batches (rate too low) or measures queueing
collapse (rate too high).

Shed requests (:class:`~repro.errors.ServiceOverloadedError`) are
counted and retried after a short backoff, exercising exactly the
client behaviour the admission-control contract asks for.

Workloads are drawn per-request from a seeded weighted mix, and unrank
indices from the same seeded stream, so a report is reproducible for a
given ``(seed, clients, total)`` triple up to thread scheduling.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.core.factorial import factorial
from repro.errors import ServiceOverloadedError
from repro.serve.model import WORKLOADS, Request
from repro.serve.service import PermutationService

__all__ = ["LoadReport", "run_closed_loop", "percentile"]


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(p / 100 * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """Outcome of one closed-loop run."""

    clients: int
    completed: int
    shed: int
    duration_s: float
    latencies_s: list[float] = field(repr=False, default_factory=list)
    by_workload: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    batch_lane_sum: int = 0
    batched_responses: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mean_lanes(self) -> float:
        """Mean batch occupancy over non-cached responses."""
        if not self.batched_responses:
            return 0.0
        return self.batch_lane_sum / self.batched_responses

    def latency_percentiles(self) -> dict[str, float]:
        values = sorted(self.latencies_s)
        return {
            "p50": percentile(values, 50),
            "p90": percentile(values, 90),
            "p99": percentile(values, 99),
            "max": values[-1] if values else 0.0,
        }


def run_closed_loop(
    service: PermutationService,
    n: int,
    total: int,
    clients: int = 8,
    mix: dict[str, float] | None = None,
    seed: int = 0,
    shed_backoff_s: float = 0.0005,
) -> LoadReport:
    """Drive ``total`` completed requests through ``service``.

    ``mix`` maps workload name → weight (default: uniform over all
    three).  Returns a :class:`LoadReport`; every latency sample is the
    full client-observed round trip (submit → response).
    """
    if total < 1:
        raise ValueError("total must be positive")
    if clients < 1:
        raise ValueError("clients must be positive")
    mix = dict(mix) if mix else {w: 1.0 for w in WORKLOADS}
    for w in mix:
        if w not in WORKLOADS:
            raise ValueError(f"unknown workload {w!r} in mix")
    names = sorted(mix)
    weights = [mix[w] for w in names]
    limit = factorial(n)

    report = LoadReport(clients=clients, completed=0, shed=0, duration_s=0.0)
    lock = threading.Lock()
    remaining = [total]

    def client(client_id: int) -> None:
        rng = random.Random((seed << 16) ^ client_id)
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            workload = rng.choices(names, weights)[0]
            index = rng.randrange(limit) if workload == "unrank" else None
            if workload == "shuffle" and n < 2:
                workload = "unrank"
                index = rng.randrange(limit)
            req = Request(workload=workload, n=n, index=index)
            t0 = time.perf_counter()
            while True:
                try:
                    resp = service.submit(req).result(timeout=30.0)
                    break
                except ServiceOverloadedError:
                    with lock:
                        report.shed += 1
                    time.sleep(shed_backoff_s)
            latency = time.perf_counter() - t0
            with lock:
                report.completed += 1
                report.latencies_s.append(latency)
                report.by_workload[workload] = report.by_workload.get(workload, 0) + 1
                if resp.cached:
                    report.cache_hits += 1
                else:
                    report.batch_lane_sum += resp.lanes
                    report.batched_responses += 1

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.duration_s = time.perf_counter() - t_start
    return report
