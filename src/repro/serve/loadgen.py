"""Synthetic closed-loop load generator for the serving layer.

Closed-loop means each simulated client keeps exactly one request in
flight: it submits, waits for the response, records the latency, and
immediately submits again.  Offered load therefore scales with the
client count and never runs away from the service — the honest way to
measure a batching layer, because an open-loop generator with a fixed
rate either underfills batches (rate too low) or measures queueing
collapse (rate too high).

Failed attempts are accounted by *why* they failed, never folded
together: overload sheds (:class:`~repro.errors.ServiceOverloadedError`,
the admission queue was full — back off and retry) and degraded sheds
(:class:`~repro.errors.ServiceDegradedError`, a supervised shard stepped
down past the rung that could serve the request) are separate counters,
and responses that *were* served while degraded (``mode="fallback"``)
are counted as service, tallied per mode.  ``availability`` is the
fraction of attempts that produced a response — the number the chaos
campaign's ≥90 % floor is asserted against.

With ``verify=True`` every response is client-side checked through the
same oracle the supervised tier uses internally
(:func:`~repro.robustness.checkers.check_served_batch`): bijectivity for
everything, the independent rank-oracle for deterministic workloads.
``incorrect`` counts convictions and must be zero — a nonzero count
means the serving stack returned a wrong permutation to a client, the
one invariant no degradation excuses.

Workloads are drawn per-request from a seeded weighted mix, and unrank
indices from the same seeded stream, so a report is reproducible for a
given ``(seed, clients, total)`` triple up to thread scheduling.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.factorial import factorial
from repro.errors import (
    FaultDetectedError,
    ServiceDegradedError,
    ServiceOverloadedError,
)
from repro.robustness.checkers import check_served_batch
from repro.serve.model import WORKLOADS, Request
from repro.serve.service import PermutationService

__all__ = ["LoadReport", "run_closed_loop", "percentile"]


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(p / 100 * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """Outcome of one closed-loop run."""

    clients: int
    completed: int
    shed: int
    duration_s: float
    latencies_s: list[float] = field(repr=False, default_factory=list)
    by_workload: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    batch_lane_sum: int = 0
    batched_responses: int = 0
    degraded_shed: int = 0
    degraded_responses: int = 0
    abandoned: int = 0
    incorrect: int = 0
    modes: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mean_lanes(self) -> float:
        """Mean batch occupancy over non-cached responses."""
        if not self.batched_responses:
            return 0.0
        return self.batch_lane_sum / self.batched_responses

    @property
    def availability(self) -> float:
        """Fraction of attempts that produced a response.

        Every shed — overload or degraded — and every abandoned request
        counts as a failed attempt; a response served from any rung
        (worker, fallback, cache) counts as service.  1.0 when nothing
        was attempted.
        """
        attempts = self.completed + self.shed + self.degraded_shed + self.abandoned
        if attempts == 0:
            return 1.0
        return self.completed / attempts

    def latency_percentiles(self) -> dict[str, float]:
        values = sorted(self.latencies_s)
        return {
            "p50": percentile(values, 50),
            "p90": percentile(values, 90),
            "p99": percentile(values, 99),
            "max": values[-1] if values else 0.0,
        }


def run_closed_loop(
    service: PermutationService,
    n: int,
    total: int,
    clients: int = 8,
    mix: dict[str, float] | None = None,
    seed: int = 0,
    shed_backoff_s: float = 0.0005,
    degraded_backoff_s: float = 0.005,
    max_attempts: int = 400,
    verify: bool = False,
) -> LoadReport:
    """Drive ``total`` completed requests through ``service``.

    ``mix`` maps workload name → weight (default: uniform over all
    three).  Returns a :class:`LoadReport`; every latency sample is the
    full client-observed round trip (submit → response).  A request that
    keeps shedding for ``max_attempts`` attempts is *abandoned* (counted,
    not retried forever) so a permanently degraded shard cannot hang the
    run.  With ``verify=True`` each response is oracle-checked and
    convictions are counted in ``incorrect``.
    """
    if total < 1:
        raise ValueError("total must be positive")
    if clients < 1:
        raise ValueError("clients must be positive")
    mix = dict(mix) if mix else {w: 1.0 for w in WORKLOADS}
    for w in mix:
        if w not in WORKLOADS:
            raise ValueError(f"unknown workload {w!r} in mix")
    names = sorted(mix)
    weights = [mix[w] for w in names]
    limit = factorial(n)

    report = LoadReport(clients=clients, completed=0, shed=0, duration_s=0.0)
    lock = threading.Lock()
    remaining = [total]

    def check_response(resp) -> bool:
        """True when the served permutation survives the oracle."""
        perms = np.asarray([resp.permutation], dtype=np.int64)
        indices = None
        if resp.workload != "shuffle" and resp.index is not None:
            indices = [resp.index]
        try:
            check_served_batch(perms, indices)
        except FaultDetectedError:
            return False
        return True

    def client(client_id: int) -> None:
        rng = random.Random((seed << 16) ^ client_id)
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            workload = rng.choices(names, weights)[0]
            index = rng.randrange(limit) if workload == "unrank" else None
            if workload == "shuffle" and n < 2:
                workload = "unrank"
                index = rng.randrange(limit)
            req = Request(workload=workload, n=n, index=index)
            t0 = time.perf_counter()
            resp = None
            for _ in range(max_attempts):
                try:
                    resp = service.submit(req).result(timeout=30.0)
                    break
                except ServiceOverloadedError:
                    with lock:
                        report.shed += 1
                    time.sleep(shed_backoff_s)
                except ServiceDegradedError:
                    with lock:
                        report.degraded_shed += 1
                    time.sleep(degraded_backoff_s)
            if resp is None:
                with lock:
                    report.abandoned += 1
                continue
            latency = time.perf_counter() - t0
            ok = check_response(resp) if verify else True
            with lock:
                report.completed += 1
                report.latencies_s.append(latency)
                report.by_workload[workload] = report.by_workload.get(workload, 0) + 1
                report.modes[resp.mode] = report.modes.get(resp.mode, 0) + 1
                if resp.mode == "fallback":
                    report.degraded_responses += 1
                if not ok:
                    report.incorrect += 1
                if resp.cached:
                    report.cache_hits += 1
                else:
                    report.batch_lane_sum += resp.lanes
                    report.batched_responses += 1

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.duration_s = time.perf_counter() - t_start
    return report
