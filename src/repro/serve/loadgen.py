"""Synthetic closed-loop load generators for the serving layer.

Closed-loop means each simulated client keeps a bounded number of
requests in flight: it submits, waits for the response, records the
latency, and immediately submits again.  Offered load therefore scales
with the client count and never runs away from the service — the honest
way to measure a batching layer, because an open-loop generator with a
fixed rate either underfills batches (rate too low) or measures queueing
collapse (rate too high).

Two drivers share one :class:`LoadReport`:

* :func:`run_closed_loop` — in-process, one thread per client calling
  :meth:`~repro.serve.service.PermutationService.submit` directly; the
  PR-5/PR-6 benchmark driver.
* :func:`run_socket_loadgen` — over real TCP connections speaking
  ``repro-serve/1``: ``connections`` sockets, each keeping ``depth``
  frames of ``frame_count`` lanes pipelined.  Typed wire statuses map
  onto the same counters the in-process driver uses (``OVERLOADED`` →
  ``shed``, ``DEGRADED`` → ``degraded_shed``), so availability means the
  same thing measured through the network as measured in-process.

Latency samples fold into a :class:`~repro.obs.digests.LatencyDigest`
instead of a per-request float list, so a multi-million-request run
holds a few hundred bucket counters rather than every sample;
:meth:`LoadReport.latency_percentiles` keeps its shape (``p50`` /
``p90`` / ``p99`` / ``max``) reading the digest.

Failed attempts are accounted by *why* they failed, never folded
together, and ``availability`` is the fraction of attempts that produced
a response — the number the chaos campaign's ≥90 % floor is asserted
against.  With ``verify=True`` every response is client-side checked
through the same oracle the supervised tier uses internally
(:func:`~repro.robustness.checkers.check_served_batch`); ``incorrect``
counts convictions and must be zero — a wrong permutation served to a
client is the one invariant no degradation excuses.

Workloads are drawn per-request from a seeded weighted mix, and unrank
indices from the same seeded stream, so a report is reproducible for a
given ``(seed, clients, total)`` triple up to thread scheduling.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.factorial import factorial
from repro.errors import (
    FaultDetectedError,
    ServiceDegradedError,
    ServiceOverloadedError,
)
from repro.obs.digests import LatencyDigest
from repro.robustness.checkers import check_served_batch
from repro.serve.model import WORKLOADS, Request
from repro.serve.net.client import ServeConnection
from repro.serve.service import PermutationService

__all__ = ["LoadReport", "run_closed_loop", "run_socket_loadgen", "percentile"]


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(p / 100 * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """Outcome of one closed-loop run."""

    clients: int
    completed: int
    shed: int
    duration_s: float
    latency_digest: LatencyDigest = field(repr=False, default_factory=LatencyDigest)
    by_workload: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    batch_lane_sum: int = 0
    batched_responses: int = 0
    degraded_shed: int = 0
    degraded_responses: int = 0
    abandoned: int = 0
    incorrect: int = 0
    lanes_completed: int = 0
    modes: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def lanes_per_second(self) -> float:
        """Permutations per second — the socket driver's scaling metric.

        For in-process runs (one lane per request) this equals
        ``throughput_rps``; wide socket frames complete ``frame_count``
        permutations per response.
        """
        return self.lanes_completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mean_lanes(self) -> float:
        """Mean batch occupancy over non-cached responses."""
        if not self.batched_responses:
            return 0.0
        return self.batch_lane_sum / self.batched_responses

    @property
    def availability(self) -> float:
        """Fraction of attempts that produced a response.

        Every shed — overload or degraded — and every abandoned request
        counts as a failed attempt; a response served from any rung
        (worker, fallback, cache) counts as service.  1.0 when nothing
        was attempted.
        """
        attempts = self.completed + self.shed + self.degraded_shed + self.abandoned
        if attempts == 0:
            return 1.0
        return self.completed / attempts

    def latency_percentiles(self) -> dict[str, float]:
        d = self.latency_digest
        return {
            "p50": d.quantile(0.50),
            "p90": d.quantile(0.90),
            "p99": d.quantile(0.99),
            "max": d.max,
        }


def _build_mix(mix: dict[str, float] | None):
    mix = dict(mix) if mix else {w: 1.0 for w in WORKLOADS}
    for w in mix:
        if w not in WORKLOADS:
            raise ValueError(f"unknown workload {w!r} in mix")
    names = sorted(mix)
    return names, [mix[w] for w in names]


def run_closed_loop(
    service: PermutationService,
    n: int,
    total: int,
    clients: int = 8,
    mix: dict[str, float] | None = None,
    seed: int = 0,
    shed_backoff_s: float = 0.0005,
    degraded_backoff_s: float = 0.005,
    max_attempts: int = 400,
    verify: bool = False,
) -> LoadReport:
    """Drive ``total`` completed requests through ``service``.

    ``mix`` maps workload name → weight (default: uniform over all
    three).  Returns a :class:`LoadReport`; every latency sample is the
    full client-observed round trip (submit → response).  A request that
    keeps shedding for ``max_attempts`` attempts is *abandoned* (counted,
    not retried forever) so a permanently degraded shard cannot hang the
    run.  With ``verify=True`` each response is oracle-checked and
    convictions are counted in ``incorrect``.
    """
    if total < 1:
        raise ValueError("total must be positive")
    if clients < 1:
        raise ValueError("clients must be positive")
    names, weights = _build_mix(mix)
    limit = factorial(n)

    report = LoadReport(clients=clients, completed=0, shed=0, duration_s=0.0)
    lock = threading.Lock()
    remaining = [total]

    def check_response(resp) -> bool:
        """True when the served permutation survives the oracle."""
        perms = np.asarray([resp.permutation], dtype=np.int64)
        indices = None
        if resp.workload != "shuffle" and resp.index is not None:
            indices = [resp.index]
        try:
            check_served_batch(perms, indices)
        except FaultDetectedError:
            return False
        return True

    def client(client_id: int) -> None:
        rng = random.Random((seed << 16) ^ client_id)
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            workload = rng.choices(names, weights)[0]
            index = rng.randrange(limit) if workload == "unrank" else None
            if workload == "shuffle" and n < 2:
                workload = "unrank"
                index = rng.randrange(limit)
            req = Request(workload=workload, n=n, index=index)
            t0 = time.perf_counter()
            resp = None
            for _ in range(max_attempts):
                try:
                    resp = service.submit(req).result(timeout=30.0)
                    break
                except ServiceOverloadedError:
                    with lock:
                        report.shed += 1
                    time.sleep(shed_backoff_s)
                except ServiceDegradedError:
                    with lock:
                        report.degraded_shed += 1
                    time.sleep(degraded_backoff_s)
            if resp is None:
                with lock:
                    report.abandoned += 1
                continue
            latency = time.perf_counter() - t0
            ok = check_response(resp) if verify else True
            with lock:
                report.completed += 1
                report.lanes_completed += 1
                report.latency_digest.observe(latency)
                report.by_workload[workload] = report.by_workload.get(workload, 0) + 1
                report.modes[resp.mode] = report.modes.get(resp.mode, 0) + 1
                if resp.mode == "fallback":
                    report.degraded_responses += 1
                if not ok:
                    report.incorrect += 1
                if resp.cached:
                    report.cache_hits += 1
                else:
                    report.batch_lane_sum += resp.lanes
                    report.batched_responses += 1

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.duration_s = time.perf_counter() - t_start
    return report


def run_socket_loadgen(
    host: str,
    port: int,
    n: int,
    total: int,
    connections: int = 2,
    depth: int = 1,
    frame_count: int = 1,
    mix: dict[str, float] | None = None,
    seed: int = 0,
    shed_backoff_s: float = 0.002,
    degraded_backoff_s: float = 0.01,
    max_attempts: int = 200,
    verify: bool = False,
    timeout_s: float = 30.0,
) -> LoadReport:
    """Drive ``total`` frames through a live socket server, closed-loop.

    Opens ``connections`` TCP connections, each pipelining up to
    ``depth`` frames of ``frame_count`` lanes.  ``completed`` counts
    frames and ``lanes_completed`` permutations, so
    :attr:`LoadReport.lanes_per_second` is the end-to-end serving
    throughput the multi-process benchmark scales against worker count.

    Typed failure statuses retry with backoff against the *original*
    submit time — a shed-then-served frame reports the full
    client-observed latency including its backoffs — and a frame that
    keeps failing for ``max_attempts`` attempts is abandoned.  With
    ``verify=True`` each ``OK`` frame's permutations are oracle-checked
    (rank oracle included for deterministic workloads, using the indices
    echoed on the wire).
    """
    if total < 1:
        raise ValueError("total must be positive")
    if connections < 1:
        raise ValueError("connections must be positive")
    if depth < 1:
        raise ValueError("depth must be positive")
    if frame_count < 1:
        raise ValueError("frame_count must be positive")
    names, weights = _build_mix(mix)
    limit = factorial(n)

    report = LoadReport(clients=connections, completed=0, shed=0, duration_s=0.0)
    lock = threading.Lock()
    remaining = [total]

    def claim() -> bool:
        with lock:
            if remaining[0] <= 0:
                return False
            remaining[0] -= 1
            return True

    def check_response(resp) -> bool:
        indices = (
            list(resp.indices)
            if resp.workload != "shuffle" and resp.indices is not None
            else None
        )
        try:
            check_served_batch(np.asarray(resp.permutations), indices)
        except FaultDetectedError:
            return False
        return True

    def client(client_id: int) -> None:
        rng = random.Random((seed << 20) ^ client_id)
        # request_id -> [t0, workload, attempts, indices]
        inflight: dict[int, list] = {}

        def draw():
            workload = rng.choices(names, weights)[0]
            if workload == "shuffle" and n < 2:
                workload = "unrank"
            indices = (
                [rng.randrange(limit) for _ in range(frame_count)]
                if workload == "unrank"
                else None
            )
            return workload, indices

        with ServeConnection(host, port, timeout=timeout_s) as conn:

            def launch() -> bool:
                if not claim():
                    return False
                workload, indices = draw()
                rid = conn.send(workload, n, frame_count, indices)
                inflight[rid] = [time.perf_counter(), workload, 1, indices]
                return True

            while launch() and len(inflight) < depth:
                pass
            while inflight:
                resp = conn.recv()
                rec = inflight.pop(resp.request_id, None)
                if rec is None:
                    continue  # stale id after an abandoned resend
                t0, workload, attempts, indices = rec
                if resp.status == "ok":
                    latency = time.perf_counter() - t0
                    ok = check_response(resp) if verify else True
                    with lock:
                        report.completed += 1
                        report.lanes_completed += resp.count
                        report.latency_digest.observe(latency)
                        report.by_workload[workload] = (
                            report.by_workload.get(workload, 0) + 1
                        )
                        report.modes[resp.mode] = report.modes.get(resp.mode, 0) + 1
                        if resp.mode == "fallback":
                            report.degraded_responses += 1
                        if not ok:
                            report.incorrect += 1
                        if resp.mode == "cached":
                            report.cache_hits += 1
                        else:
                            report.batch_lane_sum += resp.lanes
                            report.batched_responses += 1
                    launch()
                    continue
                retryable = resp.status in ("overloaded", "degraded")
                with lock:
                    if resp.status == "overloaded":
                        report.shed += 1
                    elif resp.status == "degraded":
                        report.degraded_shed += 1
                if retryable and attempts < max_attempts:
                    time.sleep(
                        shed_backoff_s
                        if resp.status == "overloaded"
                        else degraded_backoff_s
                    )
                    rid = conn.send(workload, n, frame_count, indices)
                    inflight[rid] = [t0, workload, attempts + 1, indices]
                else:
                    with lock:
                        report.abandoned += 1
                    launch()

    threads = [
        threading.Thread(target=client, args=(i,), name=f"sockgen-{i}")
        for i in range(connections)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.duration_s = time.perf_counter() - t_start
    return report
