"""Execution engines behind the serving layer's batch sweeps.

One engine per batch group key:

* :class:`ConverterEngine` — the §II index-to-permutation converter as a
  prepared :class:`~repro.hdl.BatchEntry`: each request's index becomes
  one lane of a single compiled sweep, and the per-lane ``out0..out{n−1}``
  element buses are read back as permutations.  ``unrank`` and
  ``random_perm`` requests share this engine (and therefore each other's
  batches) because a ``random_perm`` is an unrank of a server-drawn
  index.
* :class:`ShuffleEngine` — the §III Knuth-shuffle cascade via its
  vectorised functional model.  The gate-level shuffle netlist embeds
  its LFSRs *in* the circuit, so every lane of a packed sweep would see
  identical register streams and produce the same permutation; the
  functional model draws one stream and deals consecutive words across
  the batch, which is exactly what distinct hardware clocks would do.

Engines are constructed lazily and memoised per ``(kind, n)`` by
:class:`EngineBank` — construction compiles the converter netlist (a
one-time cost amortised through the process-wide kernel cache), after
which every sweep is pure hot path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.converter import IndexToPermutationConverter
from repro.core.knuth import KnuthShuffleCircuit
from repro.hdl.compile import note_sweep
from repro.hdl.simulator import BatchEntry

__all__ = ["ConverterEngine", "ShuffleEngine", "EngineBank"]


class ConverterEngine:
    """Batched unranking through one prepared converter sweep.

    ``backend`` selects the simulation engine through the registry
    (:mod:`repro.hdl.engine`): ``"compiled"`` (bigint lanes, the
    63-payload-lane quantum) by default, ``"vector"`` for wide-lane
    NumPy sweeps when the service admits batches beyond 63.
    """

    kind = "converter"

    def __init__(self, n: int, backend: str = "compiled"):
        self.n = n
        self.converter = IndexToPermutationConverter(n)
        self._entry = BatchEntry(self.converter.build_netlist(), backend=backend)
        self.backend = self._entry.engine.name

    @property
    def sweep_lanes(self) -> int:
        """Lane capacity of one sweep, as reported by the engine."""
        return self._entry.engine.capabilities.sweep_lanes

    @property
    def kernel_fingerprint(self) -> str:
        """Fingerprint of the compiled kernel this engine sweeps through.

        The supervised tier uses it to quarantine the process-wide
        kernel-cache entry when a response check convicts this engine's
        output (:func:`repro.hdl.compile.evict_kernel`).
        """
        return self._entry.kernel.fingerprint

    def run(self, indices: Sequence[int]) -> np.ndarray:
        """Unrank a batch of indices in one sweep → ``(B, n)`` array."""
        note_sweep("converter", len(indices), engine=self.backend)
        outs = self._entry.run({"index": list(indices)}, materialize=False)
        perms = np.empty((len(indices), self.n), dtype=np.int64)
        for t in range(self.n):
            perms[:, t] = outs[f"out{t}"]
        return perms

    def run_single(self, index: int) -> np.ndarray:
        """The unbatched comparison path: one request, one sweep.

        Identical work to a one-lane :meth:`run`; exists so the serving
        benchmark can measure exactly what batching amortises.
        """
        return self.run([index])[0]


class ShuffleEngine:
    """Batched random permutations from the Knuth-shuffle cascade."""

    kind = "shuffle"

    def __init__(self, n: int, m: int = 31, seed_salt: int = 0):
        self.n = n
        seeds = None
        if seed_salt:
            # re-seed each stage deterministically from the salt so two
            # services configured differently draw distinct streams
            circuit = KnuthShuffleCircuit(n, m=m)
            seeds = [
                (s * 0x9E3779B9 + seed_salt) % ((1 << w) - 1) + 1
                for s, w in zip(circuit.seeds, circuit.widths)
            ]
        self.circuit = KnuthShuffleCircuit(n, m=m, seeds=seeds)

    def run(self, count: int) -> np.ndarray:
        """Draw ``count`` random permutations → ``(B, n)`` array."""
        note_sweep("shuffle", count, engine="functional")
        return self.circuit.sample(count)


class EngineBank:
    """Lazy per-``(kind, n)`` engine memo.

    Not thread-safe on its own; the service constructs engines under its
    lock (construction is rare — once per distinct ``n``) and sweeps
    outside it (engines' run methods touch no shared mutable state
    except the shuffle LFSRs, which the service serialises per batch).
    """

    def __init__(
        self,
        shuffle_m: int = 31,
        shuffle_seed_salt: int = 0,
        backend: str = "compiled",
    ):
        self._engines: dict[tuple[str, int], object] = {}
        self._shuffle_m = shuffle_m
        self._shuffle_seed_salt = shuffle_seed_salt
        self._backend = backend

    def converter(self, n: int) -> ConverterEngine:
        key = ("converter", n)
        engine = self._engines.get(key)
        if engine is None:
            engine = self._engines[key] = ConverterEngine(
                n, backend=self._backend
            )
        return engine  # type: ignore[return-value]

    def shuffle(self, n: int) -> ShuffleEngine:
        key = ("shuffle", n)
        engine = self._engines.get(key)
        if engine is None:
            engine = self._engines[key] = ShuffleEngine(
                n, m=self._shuffle_m, seed_salt=self._shuffle_seed_salt
            )
        return engine  # type: ignore[return-value]

    def for_key(self, key: tuple[str, int]):
        kind, n = key
        return self.converter(n) if kind == "converter" else self.shuffle(n)
