"""Supervised multi-worker serving tier: restart, breakers, degradation.

:class:`PermutationService` (PR 5) is a single failure domain: one stuck
sweep, one corrupted kernel or one crashed thread takes every shard down
with it.  This module applies the repo's fault-injection philosophy one
layer up — the serving stack itself is treated as hardware that *will*
fail, and correctness under failure is verified, not assumed.

Architecture
------------

Sweeps are executed by **shard workers**: one supervised worker per
batch-group key ``(kind, n)``, each owning a *private* engine (its own
compiled kernel entry) and running sweeps on its own thread, the
in-process stand-in for a worker process.  The supervisor drives each
sweep through a per-shard **degradation ladder**:

1. **worker** — the compiled-engine worker runs the sweep under a
   response deadline.  A crash (the worker thread dies), a stall (the
   deadline expires; the worker is abandoned exactly like
   :func:`~repro.parallel.sharding.hardened_map_reduce` abandons a
   timed-out process — any late result is discarded) or a failed
   response check counts against the shard's **circuit breaker** and
   schedules a worker **restart with exponential backoff** on the
   monotonic clock (the same clock-seam discipline as
   ``parallel/sharding.py``; tests drive ``_monotonic`` directly).
2. **fallback** — while the worker is restarting or its breaker is
   open, sweeps run on the in-process interp fallback (the functional
   model for converter shards — a different algorithm and code path
   from the compiled datapath, so a kernel bug cannot follow the sweep
   down the ladder).  The fallback has its own breaker.
3. **cache-only** — with both breakers open the shard serves cache hits
   only; everything else is shed with
   :class:`~repro.errors.ServiceDegradedError` at admission.

Every worker-produced **and** fallback-produced batch is end-to-end
self-checked through :func:`repro.robustness.checkers.check_served_batch`
(bijectivity for all sweeps, the independent Lehmer rank-oracle for
converter sweeps) before any future resolves — a corrupted result is
never served silently.  A check failure additionally **quarantines** the
worker's compiled kernel (:func:`repro.hdl.compile.evict_kernel`): the
replacement worker recompiles from the netlist rather than inheriting
the convicted artefact through the process-wide kernel cache.

The breaker is the classic three-state machine::

            failure_threshold consecutive failures
   CLOSED ──────────────────────────────────────────▶ OPEN
      ▲                                                │ recovery_s
      │ half_open_probes successes          elapsed    ▼
      └──────────────────────────────────────────── HALF-OPEN
                         (any failure reopens)

Everything is observable: worker restarts, failovers, check failures
and quarantines are counters; breaker state is the Prometheus enum
gauge ``repro_serve_breaker_state``; served-mode counts flow through
``repro_serve_mode_total``; and with a tracer attached every failover,
restart and check failure becomes a span.

:class:`SupervisedService` plugs the supervisor into the service's
execution seam (:meth:`~repro.serve.service.PermutationService._run_sweep`)
and admission gate, inheriting the whole PR-5 hot path unchanged.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.core.converter import IndexToPermutationConverter
from repro.errors import (
    FaultDetectedError,
    ServiceDegradedError,
    WorkerCrashedError,
    WorkerStalledError,
)
from repro.hdl.compile import evict_kernel
from repro.obs import metrics as _metrics
from repro.obs.tracing import Span, Tracer
from repro.robustness.checkers import check_served_batch
from repro.serve.engine import ConverterEngine, ShuffleEngine
from repro.serve.service import PermutationService, ServiceConfig, batch_indices

__all__ = [
    "BREAKER_STATES",
    "BreakerConfig",
    "CircuitBreaker",
    "SupervisorConfig",
    "ShardWorker",
    "FunctionalConverterEngine",
    "SweepSupervisor",
    "SupervisedService",
]

# Injectable clock/sleep seams (monotonic), mirroring parallel.sharding:
# every deadline, backoff and heartbeat computation goes through these.
_monotonic = time.monotonic
_sleep = time.sleep

#: Breaker states in enum-gauge order (closed is the healthy state).
BREAKER_STATES = ("closed", "open", "half_open")

#: How long an idle worker thread waits on its queue between heartbeats.
_POLL_S = 0.05

_WORKER_RESTARTS = _metrics.REGISTRY.counter(
    "repro_serve_worker_restarts_total",
    "supervised worker restarts by shard and reason",
    ("shard", "reason"),
)
_BREAKER_STATE = _metrics.REGISTRY.gauge(
    "repro_serve_breaker_state",
    "circuit-breaker state per shard and ladder path (enum gauge)",
    ("shard", "path", "state"),
)
_CHECK_FAILURES = _metrics.REGISTRY.counter(
    "repro_serve_check_failures_total",
    "served-response check failures by shard and check kind",
    ("shard", "kind"),
)
_FAILOVERS = _metrics.REGISTRY.counter(
    "repro_serve_failovers_total",
    "sweeps that failed over from the worker to the fallback rung",
    ("shard",),
)
_QUARANTINES = _metrics.REGISTRY.counter(
    "repro_serve_kernel_quarantines_total",
    "compiled kernels evicted after a response-check conviction",
    ("shard",),
)
_SWEEP_DIGEST = _metrics.REGISTRY.digest(
    "repro_serve_sweep_seconds",
    "supervised sweep duration digest by shard and ladder rung",
    ("shard", "rung"),
)


# --------------------------------------------------------------------- #
# circuit breaker


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds for one :class:`CircuitBreaker`.

    ``failure_threshold`` consecutive failures trip the breaker OPEN;
    after ``recovery_s`` (monotonic) it half-opens and admits probe
    traffic; ``half_open_probes`` consecutive probe successes close it
    again, any probe failure re-opens it and restarts the recovery
    clock.
    """

    failure_threshold: int = 3
    recovery_s: float = 0.25
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if self.recovery_s < 0:
            raise ValueError("recovery_s must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be positive")


class CircuitBreaker:
    """Closed → open → half-open breaker on the monotonic clock.

    A pure, lock-free state machine: the caller (the supervisor, under
    its lock) invokes :meth:`allow` before attempting the guarded path
    and exactly one of :meth:`record_success` / :meth:`record_failure`
    after.  The OPEN → HALF_OPEN transition is computed lazily from the
    clock seam on read, so no timer thread exists and tests can drive
    recovery by stepping a fake clock.
    """

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config or BreakerConfig()
        self._failures = 0  # consecutive failures while closed
        self._probes = 0  # consecutive successes while half-open
        self._opened_at: float | None = None
        self.trips = 0  # lifetime closed→open transitions

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if _monotonic() - self._opened_at >= self.config.recovery_s:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """May the guarded path be attempted right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        if self._opened_at is not None:
            self._probes += 1
            if self._probes >= self.config.half_open_probes:
                self._opened_at = None
                self._failures = 0
                self._probes = 0
        else:
            self._failures = 0

    def record_failure(self) -> None:
        self._probes = 0
        if self._opened_at is not None:
            # a half-open probe failed: re-open and restart recovery
            self._opened_at = _monotonic()
            return
        self._failures += 1
        if self._failures >= self.config.failure_threshold:
            self._opened_at = _monotonic()
            self.trips += 1


# --------------------------------------------------------------------- #
# workers


class _SweepJob:
    """One sweep handed to a worker thread, with a settled-event.

    ``traced`` asks the worker thread to time its sweep in a span
    (minted worker-side, grafted by the caller after the job settles —
    never touched concurrently from both threads); the finished span
    lands in ``span``.
    """

    __slots__ = ("payload", "event", "value", "error", "traced", "span")

    def __init__(self, payload, traced: bool = False):
        self.payload = payload
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None
        self.traced = traced
        self.span: Span | None = None


class ShardWorker:
    """One supervised worker: a private engine swept on its own thread.

    The thread is the in-process stand-in for a worker process: it owns
    the engine (built in :meth:`__init__`, on the spawning thread, so a
    failed build surfaces as a failed spawn, not a dead worker), beats a
    heartbeat timestamp while idle and around every sweep, and dies —
    ``alive`` goes ``False`` — when a sweep raises
    :class:`~repro.errors.WorkerCrashedError` (how the chaos harness
    simulates a worker-process crash).  Any other sweep exception fails
    the sweep but leaves the worker up, like a process surviving one bad
    request.

    :meth:`run` enforces the response deadline: if the worker does not
    settle the job in time it raises
    :class:`~repro.errors.WorkerStalledError` and the worker must be
    :meth:`kill`-ed — the stalled thread is abandoned (it cannot be
    interrupted, exactly like a stuck worker process) and any late
    result it produces is discarded with the job object.
    """

    def __init__(self, key, worker_id: int, engine, chaos=None):
        self.key = key
        self.worker_id = worker_id
        self.engine = engine
        self.chaos = chaos
        self.alive = True
        self.last_beat = _monotonic()
        self._killed = False
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"serve-worker-{key[0]}-{key[1]}-{worker_id}",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------ #

    def run(self, payload, deadline_s: float, parent: Span | None = None):
        """One sweep with a response deadline; raises typed failures.

        With ``parent`` given, the worker thread times the sweep —
        compiled-kernel execution included — in its own span, which is
        grafted under ``parent`` (restamped onto its trace) once the job
        settles.  A stalled job's span is *not* grafted: the abandoned
        thread may still be mutating it.
        """
        if not self.alive:
            raise WorkerCrashedError(
                f"worker {self.worker_id} for shard {self.key} is dead"
            )
        job = _SweepJob(payload, traced=parent is not None)
        self._queue.put(job)
        if not job.event.wait(deadline_s):
            raise WorkerStalledError(
                f"worker {self.worker_id} for shard {self.key} missed its "
                f"{deadline_s:g}s sweep deadline (stall detected)"
            )
        if parent is not None and job.span is not None:
            parent.children.append(
                job.span.restamp(parent.trace_id, parent.span_id)
            )
        if job.error is not None:
            raise job.error
        return job.value

    def kill(self) -> None:
        """Abandon the worker; a stalled thread exits at its next beat."""
        self.alive = False
        self._killed = True
        self._queue.put(None)  # wake an idle loop so the thread exits

    @property
    def heartbeat_age_s(self) -> float:
        return max(0.0, _monotonic() - self.last_beat)

    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        while not self._killed:
            try:
                job = self._queue.get(timeout=_POLL_S)
            except queue.Empty:
                self.last_beat = _monotonic()
                continue
            if job is None or self._killed:
                break
            self.last_beat = _monotonic()
            sweep_span = (
                Span(
                    "serve.worker_sweep",
                    {
                        "shard": str(self.key),
                        "worker_id": self.worker_id,
                        "kernel": getattr(
                            self.engine, "kernel_fingerprint", None
                        ),
                    },
                )
                if job.traced
                else None
            )
            try:
                plan = (
                    self.chaos.plan_sweep(self.key, self.worker_id)
                    if self.chaos is not None
                    else None
                )
                if plan is not None:
                    plan.before()  # may crash the worker or stall it
                value = self.engine.run(job.payload)
                if plan is not None:
                    value = plan.apply(value)
            except WorkerCrashedError as exc:
                # the worker "process" dies with the failing sweep
                self.alive = False
                if sweep_span is not None:
                    job.span = sweep_span.end(
                        "error", error=f"{type(exc).__name__}: {exc}"
                    )
                job.error = exc
                job.event.set()
                return
            except BaseException as exc:
                if sweep_span is not None:
                    job.span = sweep_span.end(
                        "error", error=f"{type(exc).__name__}: {exc}"
                    )
                job.error = exc
                job.event.set()
            else:
                if sweep_span is not None:
                    job.span = sweep_span.end("ok")
                job.value = value
                job.event.set()
            self.last_beat = _monotonic()
        self.alive = False


class FunctionalConverterEngine:
    """The interp fallback rung: the stage-accurate functional model.

    Shares no code with the compiled datapath — a corrupted or
    miscompiled kernel cannot reproduce its own bug here, which is what
    makes failover a *correctness* recovery and not just an
    availability one.
    """

    kind = "converter"

    def __init__(self, n: int):
        self.n = n
        self.converter = IndexToPermutationConverter(n)

    def run(self, indices):
        return self.converter.convert_batch(list(indices))


# --------------------------------------------------------------------- #
# supervisor


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs for :class:`SweepSupervisor`.

    ``sweep_deadline_s`` is the per-sweep response deadline (stall
    detection); ``heartbeat_timeout_s`` the maximum tolerated heartbeat
    age for an idle worker before it is declared stuck and restarted.
    Restart backoff doubles per consecutive failure from
    ``restart_backoff_s`` up to ``restart_backoff_max_s`` and resets on
    success.  ``check`` enables the end-to-end response oracle (on by
    default — the whole point of the tier); ``fallback`` enables the
    interp rung of the ladder (off turns every worker outage into
    cache-only mode).
    """

    sweep_deadline_s: float = 1.0
    heartbeat_timeout_s: float = 5.0
    restart_backoff_s: float = 0.02
    restart_backoff_max_s: float = 1.0
    check: bool = True
    fallback: bool = True
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    fallback_breaker: BreakerConfig = field(
        default_factory=lambda: BreakerConfig(failure_threshold=2, recovery_s=0.5)
    )

    def __post_init__(self) -> None:
        if self.sweep_deadline_s <= 0:
            raise ValueError("sweep_deadline_s must be positive")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if self.restart_backoff_s < 0 or self.restart_backoff_max_s < 0:
            raise ValueError("restart backoffs must be non-negative")


class _Shard:
    """Supervisor-side state for one ``(kind, n)`` shard."""

    __slots__ = (
        "key",
        "exec_lock",
        "worker",
        "fallback_engine",
        "breaker",
        "fallback_breaker",
        "spawns",
        "restarts",
        "consecutive_failures",
        "retry_at",
        "check_failures",
        "quarantines",
        "served",
    )

    def __init__(self, key, config: SupervisorConfig):
        self.key = key
        self.exec_lock = threading.Lock()
        self.worker: ShardWorker | None = None
        self.fallback_engine = None
        self.breaker = CircuitBreaker(config.breaker)
        self.fallback_breaker = CircuitBreaker(config.fallback_breaker)
        self.spawns = 0
        self.restarts = 0
        self.consecutive_failures = 0
        self.retry_at = 0.0
        self.check_failures = 0
        self.quarantines = 0
        self.served = {"worker": 0, "fallback": 0}


class SweepSupervisor:
    """Drives sweeps through the per-shard degradation ladder.

    ``engine_factory(key, worker_id)`` builds a fresh private engine for
    each spawned worker; ``fallback_factory(key)`` builds the shard's
    in-process fallback engine (memoised per shard).  ``chaos`` is an
    optional injection policy (see :mod:`repro.serve.chaos`) consulted
    by workers before/after every sweep — and, when the policy targets
    the fallback rung, by the supervisor's fallback execution too.
    """

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        *,
        engine_factory,
        fallback_factory,
        chaos=None,
        tracer: Tracer | None = None,
    ):
        self.config = config or SupervisorConfig()
        self.chaos = chaos
        self.tracer = tracer
        self._engine_factory = engine_factory
        self._fallback_factory = fallback_factory
        self._lock = threading.Lock()
        self._shards: dict[tuple, _Shard] = {}
        self._worker_ids = itertools.count()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle

    def close(self) -> None:
        with self._lock:
            self._closed = True
            workers = [s.worker for s in self._shards.values() if s.worker]
        for w in workers:
            w.kill()

    # ------------------------------------------------------------------ #
    # execution ladder

    def execute(self, key, payload, span: Span | None = None):
        """Run one sweep → ``(perms, mode)``; raises when fully degraded.

        ``payload`` is the list of indices for a converter sweep or the
        lane count for a shuffle sweep.  ``mode`` is the rung that
        served it (``"worker"`` or ``"fallback"``).  When every rung is
        exhausted the sweep fails with
        :class:`~repro.errors.ServiceDegradedError` — never with a
        wrong result: both rungs are oracle-checked before returning.

        ``span`` is the enclosing (sampled) batch span: every ladder
        step taken for this sweep — worker attempts, failovers, worker
        restarts, check failures, the fallback rung — is attached as a
        child, so one ``trace_id`` tells the sweep's whole story.
        """
        shard = self._shard(key)
        indices = payload if isinstance(payload, (list, tuple)) else None
        with shard.exec_lock:
            worker = self._acquire_worker(shard, span)
            if worker is not None:
                attempt = (
                    span.child(
                        "serve.worker_attempt",
                        shard=str(key),
                        worker_id=worker.worker_id,
                    )
                    if span is not None
                    else None
                )
                t0 = time.perf_counter()
                try:
                    perms = worker.run(
                        payload, self.config.sweep_deadline_s, attempt
                    )
                    if self.config.check:
                        check_served_batch(perms, indices)
                except FaultDetectedError as exc:
                    if attempt is not None:
                        attempt.end("error", error=f"{type(exc).__name__}: {exc}")
                    self._on_check_failure(shard, worker, exc, span)
                except Exception as exc:
                    if attempt is not None:
                        attempt.end("error", error=f"{type(exc).__name__}: {exc}")
                    self._on_worker_failure(shard, worker, exc, span)
                else:
                    if attempt is not None:
                        attempt.end("ok")
                    with self._lock:
                        shard.consecutive_failures = 0
                        shard.breaker.record_success()
                        shard.served["worker"] += 1
                    self._publish_breakers(shard)
                    if _metrics.REGISTRY.enabled:
                        _SWEEP_DIGEST.observe(
                            time.perf_counter() - t0,
                            shard=self._shard_label(key),
                            rung="worker",
                        )
                    return perms, "worker"
                if _metrics.REGISTRY.enabled:
                    _FAILOVERS.inc(shard=self._shard_label(key))
            return self._run_fallback(shard, payload, indices, span), "fallback"

    def _run_fallback(self, shard: _Shard, payload, indices, span: Span | None = None):
        """The interp rung; raises ``ServiceDegradedError`` past it."""
        with self._lock:
            allowed = (
                self.config.fallback
                and not self._closed
                and shard.fallback_breaker.allow()
            )
            engine = None
            if allowed:
                engine = shard.fallback_engine
                if engine is None:
                    engine = shard.fallback_engine = self._fallback_factory(
                        shard.key
                    )
        if allowed:
            fspan = (
                span.child("serve.fallback", shard=str(shard.key))
                if span is not None
                else None
            )
            t0 = time.perf_counter()
            try:
                plan = (
                    self.chaos.plan_fallback(shard.key)
                    if self.chaos is not None
                    else None
                )
                perms = engine.run(payload)
                if plan is not None:
                    perms = plan.apply(perms)
                if self.config.check:
                    check_served_batch(perms, indices)
            except FaultDetectedError as exc:
                if fspan is not None:
                    fspan.end("error", error=f"{type(exc).__name__}: {exc}")
                with self._lock:
                    shard.fallback_breaker.record_failure()
                    shard.check_failures += 1
                self._note_check_failure(shard, exc, path="fallback", parent=span)
            except Exception as exc:
                if fspan is not None:
                    fspan.end("error", error=f"{type(exc).__name__}: {exc}")
                with self._lock:
                    shard.fallback_breaker.record_failure()
            else:
                if fspan is not None:
                    fspan.end("ok")
                with self._lock:
                    shard.fallback_breaker.record_success()
                    shard.served["fallback"] += 1
                self._publish_breakers(shard)
                if _metrics.REGISTRY.enabled:
                    _SWEEP_DIGEST.observe(
                        time.perf_counter() - t0,
                        shard=self._shard_label(shard.key),
                        rung="fallback",
                    )
                return perms
        self._publish_breakers(shard)
        raise ServiceDegradedError(
            f"shard {shard.key} is degraded to cache-only mode "
            "(worker and fallback rungs unavailable)",
            mode="cache_only",
            shard=shard.key,
        )

    # ------------------------------------------------------------------ #
    # worker management

    def _acquire_worker(
        self, shard: _Shard, span: Span | None = None
    ) -> ShardWorker | None:
        """The shard's healthy worker, restarting it if due — or ``None``.

        ``None`` means the worker rung is skipped this sweep: breaker
        open, restart backoff still running, closed supervisor, or the
        replacement worker failed to spawn.
        """
        with self._lock:
            if self._closed or not shard.breaker.allow():
                return None
            worker = shard.worker
            if worker is not None and worker.alive:
                if worker.heartbeat_age_s <= self.config.heartbeat_timeout_s:
                    return worker
                # heartbeat went stale while idle: stuck, not serving
                self._retire_worker_locked(
                    shard, worker, "heartbeat", "worker heartbeat stale"
                )
                return None
            if _monotonic() < shard.retry_at:
                return None
            worker_id = next(self._worker_ids)
            respawn = shard.spawns > 0
        # Engine construction (netlist + kernel compile) happens outside
        # the supervisor lock: it can take milliseconds and other shards
        # must not stall behind it.
        try:
            engine = self._engine_factory(shard.key, worker_id)
            worker = ShardWorker(shard.key, worker_id, engine, chaos=self.chaos)
        except Exception as exc:
            with self._lock:
                self._schedule_retry_locked(shard)
                shard.breaker.record_failure()
            self._adopt_span(
                "serve.worker_restart",
                {"shard": str(shard.key), "outcome": "spawn_failed"},
                error=f"{type(exc).__name__}: {exc}",
                parent=span,
            )
            return None
        with self._lock:
            shard.worker = worker
            shard.spawns += 1
            if respawn:
                shard.restarts += 1
                if _metrics.REGISTRY.enabled:
                    _WORKER_RESTARTS.inc(
                        shard=self._shard_label(shard.key), reason="respawn"
                    )
        if respawn:
            self._adopt_span(
                "serve.worker_restart",
                {
                    "shard": str(shard.key),
                    "worker_id": worker_id,
                    "restarts": shard.restarts,
                },
                parent=span,
            )
        return worker

    def _retire_worker_locked(
        self, shard: _Shard, worker: ShardWorker, reason: str, detail: str
    ) -> None:
        """Kill + schedule backoff + count one failure (caller holds lock)."""
        worker.kill()
        if shard.worker is worker:
            shard.worker = None
        self._schedule_retry_locked(shard)
        shard.breaker.record_failure()
        if _metrics.REGISTRY.enabled:
            _WORKER_RESTARTS.inc(shard=self._shard_label(shard.key), reason=reason)

    def _schedule_retry_locked(self, shard: _Shard) -> None:
        shard.consecutive_failures += 1
        delay = min(
            self.config.restart_backoff_max_s,
            self.config.restart_backoff_s
            * (2 ** (shard.consecutive_failures - 1)),
        )
        shard.retry_at = _monotonic() + delay

    def _on_worker_failure(
        self,
        shard: _Shard,
        worker: ShardWorker,
        exc: Exception,
        span: Span | None = None,
    ) -> None:
        reason = (
            "stall"
            if isinstance(exc, WorkerStalledError)
            else "crash" if isinstance(exc, WorkerCrashedError) else "error"
        )
        with self._lock:
            self._retire_worker_locked(shard, worker, reason, str(exc))
        self._adopt_span(
            "serve.failover",
            {"shard": str(shard.key), "reason": reason},
            error=f"{type(exc).__name__}: {exc}",
            parent=span,
        )

    def _on_check_failure(
        self,
        shard: _Shard,
        worker: ShardWorker,
        exc: FaultDetectedError,
        span: Span | None = None,
    ) -> None:
        """A convicted response: quarantine the kernel, retire the worker."""
        fingerprint = getattr(worker.engine, "kernel_fingerprint", None)
        evicted = evict_kernel(fingerprint) if fingerprint is not None else 0
        with self._lock:
            shard.check_failures += 1
            if fingerprint is not None:
                shard.quarantines += 1
            self._retire_worker_locked(shard, worker, "check_failure", str(exc))
        if _metrics.REGISTRY.enabled and fingerprint is not None:
            _QUARANTINES.inc(shard=self._shard_label(shard.key))
        self._note_check_failure(shard, exc, path="worker", evicted=evicted, parent=span)

    def _note_check_failure(
        self,
        shard: _Shard,
        exc: FaultDetectedError,
        path: str,
        evicted: int = 0,
        parent: Span | None = None,
    ) -> None:
        kind = (
            "rank_oracle"
            if type(exc).__name__ == "SilentCorruptionError"
            else "bijectivity"
        )
        if _metrics.REGISTRY.enabled:
            _CHECK_FAILURES.inc(shard=self._shard_label(shard.key), kind=kind)
        self._adopt_span(
            "serve.check_failure",
            {
                "shard": str(shard.key),
                "path": path,
                "kind": kind,
                "quarantined_kernels": evicted,
            },
            error=str(exc),
            parent=parent,
        )

    # ------------------------------------------------------------------ #
    # introspection

    def mode_for(self, key) -> str:
        """The shard's ladder rung: ``full`` / ``degraded`` / ``cache_only``.

        Called by the admission gate on *every* request, so the healthy
        path is lock-free: a dict read and one attribute read, both
        GIL-atomic.  A closed breaker (``_opened_at is None``) means the
        worker rung is up; only a shard whose breaker has opened pays
        for the locked state walk.  The read may be one transition stale
        — harmless, because :meth:`execute` re-evaluates the ladder
        authoritatively under the shard lock.
        """
        shard = self._shards.get(key)
        if shard is None or shard.breaker._opened_at is None:
            return "full"
        with self._lock:
            if shard.breaker.allow():
                return "full"
            if self.config.fallback and shard.fallback_breaker.allow():
                return "degraded"
            return "cache_only"

    def stats(self) -> dict:
        with self._lock:
            shards = {}
            totals = {
                "restarts": 0,
                "check_failures": 0,
                "quarantines": 0,
                "served_worker": 0,
                "served_fallback": 0,
                "breaker_trips": 0,
            }
            for key, s in self._shards.items():
                worker = s.worker
                shards[str(key)] = {
                    "mode": (
                        "full"
                        if s.breaker.allow()
                        else "degraded"
                        if self.config.fallback and s.fallback_breaker.allow()
                        else "cache_only"
                    ),
                    "breaker": s.breaker.state,
                    "fallback_breaker": s.fallback_breaker.state,
                    "restarts": s.restarts,
                    "check_failures": s.check_failures,
                    "quarantines": s.quarantines,
                    "served": dict(s.served),
                    "worker_alive": bool(worker is not None and worker.alive),
                    "heartbeat_age_s": (
                        worker.heartbeat_age_s if worker is not None else None
                    ),
                }
                totals["restarts"] += s.restarts
                totals["check_failures"] += s.check_failures
                totals["quarantines"] += s.quarantines
                totals["served_worker"] += s.served["worker"]
                totals["served_fallback"] += s.served["fallback"]
                totals["breaker_trips"] += s.breaker.trips + s.fallback_breaker.trips
        return {"shards": shards, **totals}

    def health_check(self) -> dict:
        """Heartbeat ages + liveness per shard (operator probe)."""
        with self._lock:
            return {
                str(key): {
                    "alive": bool(s.worker is not None and s.worker.alive),
                    "heartbeat_age_s": (
                        s.worker.heartbeat_age_s if s.worker is not None else None
                    ),
                    "breaker": s.breaker.state,
                }
                for key, s in self._shards.items()
            }

    # ------------------------------------------------------------------ #
    # internals

    def _shard(self, key) -> _Shard:
        with self._lock:
            shard = self._shards.get(key)
            if shard is None:
                shard = self._shards[key] = _Shard(key, self.config)
            return shard

    @staticmethod
    def _shard_label(key) -> str:
        return f"{key[0]}:{key[1]}"

    def _publish_breakers(self, shard: _Shard) -> None:
        if not _metrics.REGISTRY.enabled:
            return
        label = self._shard_label(shard.key)
        _BREAKER_STATE.set_enum(
            shard.breaker.state, BREAKER_STATES, shard=label, path="worker"
        )
        _BREAKER_STATE.set_enum(
            shard.fallback_breaker.state,
            BREAKER_STATES,
            shard=label,
            path="fallback",
        )

    def _adopt_span(
        self,
        name: str,
        attrs: dict,
        error: str | None = None,
        parent: Span | None = None,
    ) -> None:
        """One finished event-span: a child of ``parent``, else adopted.

        With a ``parent`` (the sampled batch span) the event joins that
        trace directly; without one — unsampled batch, or supervisor
        housekeeping outside any sweep — it becomes its own adopted root
        so the event is still never lost.
        """
        if parent is not None:
            parent.child(name, **attrs).end(
                "ok" if error is None else "error", error=error
            )
            return
        if self.tracer is None:
            return
        span = Span(name, attrs)
        span.end("ok" if error is None else "error", error=error)
        self.tracer.adopt(span)


# --------------------------------------------------------------------- #
# the supervised service


class SupervisedService(PermutationService):
    """:class:`PermutationService` with supervised sweep execution.

    The admission/batching/caching hot path is inherited unchanged; only
    the execution seam differs — sweeps run through a
    :class:`SweepSupervisor` ladder instead of the in-process engine
    bank, and admission consults the shard's degradation mode (cache
    hits always serve; past cache-only, misses shed with
    :class:`~repro.errors.ServiceDegradedError`).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        supervisor: SupervisorConfig | None = None,
        chaos=None,
        tracer: Tracer | None = None,
    ):
        self.supervisor = SweepSupervisor(
            supervisor,
            engine_factory=self._make_worker_engine,
            fallback_factory=self._make_fallback_engine,
            chaos=chaos,
            tracer=tracer,
        )
        super().__init__(config, tracer=tracer)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        super().close()
        self.supervisor.close()

    def stats(self) -> dict:
        stats = super().stats()
        stats["supervisor"] = self.supervisor.stats()
        return stats

    # ------------------------------------------------------------------ #
    # the two seams

    def _degrade_gate(self, workload: str, key: tuple[str, int]) -> None:
        if self.supervisor.mode_for(key) == "cache_only":
            raise ServiceDegradedError(
                f"shard {key} is in cache-only mode; request shed",
                mode="cache_only",
                shard=key,
            )

    def _run_sweep(self, batch, kind: str, n: int, span: Span | None = None):
        payload = batch.lanes if kind == "shuffle" else batch_indices(batch)
        return self.supervisor.execute(batch.key, payload, span)

    # ------------------------------------------------------------------ #
    # engine factories

    def _make_worker_engine(self, key, worker_id: int):
        kind, n = key
        if kind == "shuffle":
            # distinct salt per spawned worker: a restarted shuffle
            # worker must not replay its predecessor's LFSR stream
            return ShuffleEngine(
                n,
                m=self.config.shuffle_m,
                seed_salt=self.config.rng_seed + 7919 * (worker_id + 1),
            )
        return ConverterEngine(n, backend=self.config.engine)

    def _make_fallback_engine(self, key):
        kind, n = key
        if kind == "shuffle":
            return ShuffleEngine(
                n, m=self.config.shuffle_m, seed_salt=self.config.rng_seed + 104729
            )
        return FunctionalConverterEngine(n)
