"""Blocking socket client for the ``repro-serve/1`` protocol.

:class:`ServeConnection` is deliberately simple: a plain TCP socket, an
incremental :class:`~repro.serve.net.protocol.FrameDecoder`, and explicit
``send`` / ``recv`` so callers control pipelining depth themselves.  The
load generator keeps ``depth`` frames outstanding per connection; the
CLI client uses ``request`` (send one, wait for one).

Responses are matched to requests by ``request_id``, which the
connection assigns monotonically when the caller does not.  ``recv``
returns responses in arrival order — the server may interleave
completions across shards — so pipelining callers should key off
``WireResponse.request_id`` rather than assume FIFO.
"""

from __future__ import annotations

import socket
from collections import deque
from collections.abc import Sequence

from repro.serve.net import protocol as wire

__all__ = ["ServeConnection"]


class ServeConnection:
    """One client connection to a :class:`~repro.serve.net.server.NetServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not fatal on exotic transports
        self._decoder = wire.FrameDecoder(wire.MAX_RESPONSE_FRAME)
        self._frames: deque[bytes] = deque()
        self._next_id = 1
        self._closed = False

    # ------------------------------------------------------------------ #

    def send(
        self,
        workload: str,
        n: int,
        count: int = 1,
        indices: Sequence[int] | None = None,
        request_id: int | None = None,
    ) -> int:
        """Encode and send one request frame; return its request id."""
        if request_id is None:
            request_id = self._next_id
            self._next_id = (self._next_id + 1) & 0xFFFFFFFF or 1
        payload = wire.encode_request(
            workload, n, count, request_id=request_id, indices=indices
        )
        self._sock.sendall(payload)
        return request_id

    def recv(self) -> wire.WireResponse:
        """Block until one complete response frame arrives and decode it."""
        while not self._frames:
            data = self._sock.recv(1 << 16)
            if not data:
                raise ConnectionError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return wire.decode_response(self._frames.popleft())

    def request(
        self,
        workload: str,
        n: int,
        count: int = 1,
        indices: Sequence[int] | None = None,
    ) -> wire.WireResponse:
        """Send one request and wait for its response (depth-1 round trip)."""
        self.send(workload, n, count, indices)
        return self.recv()

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "ServeConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
