"""Socket serving: the ``repro-serve/1`` wire protocol, server, client.

The network tier around :class:`~repro.serve.PermutationService`:

* :mod:`~repro.serve.net.protocol` — the length-prefixed binary frame
  codec (pure functions + an incremental decoder, no I/O);
* :mod:`~repro.serve.net.server` — an asyncio TCP front end that decodes
  frames into wide service submissions and writes responses from future
  callbacks (no waiter threads);
* :mod:`~repro.serve.net.client` — a blocking socket client with
  explicit pipelining, used by the load generator and the CLI.
"""

from repro.serve.net.client import ServeConnection
from repro.serve.net.protocol import (
    MAX_COUNT,
    MAX_REQUEST_FRAME,
    MAX_RESPONSE_FRAME,
    PROTOCOL_VERSION,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHUTDOWN,
    FrameDecoder,
    WireRequest,
    WireResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.serve.net.server import NetServer

__all__ = [
    "MAX_COUNT",
    "MAX_REQUEST_FRAME",
    "MAX_RESPONSE_FRAME",
    "PROTOCOL_VERSION",
    "STATUS_OK",
    "STATUS_INVALID",
    "STATUS_OVERLOADED",
    "STATUS_DEGRADED",
    "STATUS_SHUTDOWN",
    "STATUS_ERROR",
    "FrameDecoder",
    "WireRequest",
    "WireResponse",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "NetServer",
    "ServeConnection",
]
