"""Asyncio TCP front end for the permutation service.

One :class:`NetServer` owns a background thread running an asyncio event
loop; each connection is one coroutine.  The life of a frame:

1. bytes arrive → :class:`~repro.serve.net.protocol.FrameDecoder`
   reassembles complete frames (partial reads are its problem, not
   ours);
2. each frame decodes to a :class:`~repro.serve.net.protocol.WireRequest`
   and is submitted as one *wide* service entry
   (:meth:`~repro.serve.service.PermutationService.submit_wide`) — the
   whole frame occupies ``count`` sweep lanes behind a single future,
   which is what amortises the per-frame front-end cost across lanes;
3. admission failures (shed / degraded / shutdown / invalid) are
   answered immediately with their typed status — the ``OVERLOADED``
   status is the wire form of the service's admission control, so
   clients back off instead of timing out;
4. an admitted future gets a done-callback that trampolines onto the
   event loop (``call_soon_threadsafe``) and writes the ``OK`` frame
   from the resolving batch's result array.  No thread ever parks
   waiting on a future, so one front end sustains thousands of
   in-flight frames with a handful of threads.

Framing violations (:class:`~repro.errors.ProtocolError`) are answered
with a best-effort typed ``ERROR`` frame and the connection is closed —
byte-level corruption means the stream is no longer frame-aligned.
Semantic violations (zero count, bad ``n``, out-of-range index) answer
``INVALID`` and keep the connection open.

The server never touches engine code: it is a pure protocol adapter
over the service seams, so it works identically over the in-process
:class:`~repro.serve.service.PermutationService`, the supervised tier,
and the multi-process :class:`~repro.serve.pool.PooledService`.
"""

from __future__ import annotations

import asyncio
import threading

from repro.errors import (
    InvalidRequestError,
    ProtocolError,
    ServiceDegradedError,
    ServiceOverloadedError,
    ServiceShutdownError,
)
from repro.obs import metrics as _metrics
from repro.serve.net import protocol as wire

__all__ = ["NetServer"]

_CONNECTIONS = _metrics.REGISTRY.counter(
    "repro_serve_net_connections_total", "socket connections accepted"
)
_FRAMES = _metrics.REGISTRY.counter(
    "repro_serve_net_frames_total", "wire frames by direction and status",
    ("direction", "status"),
)
_PROTOCOL_ERRORS = _metrics.REGISTRY.counter(
    "repro_serve_net_protocol_errors_total",
    "connections dropped for wire-protocol violations",
)

_READ_CHUNK = 1 << 16


class NetServer:
    """A ``repro-serve/1`` TCP listener over one permutation service.

    ``start()`` spins the event loop up on a daemon thread and blocks
    until the socket is bound (``address`` then holds the actual
    ``(host, port)``, with the kernel-assigned port for ``port=0``).
    ``close()`` stops accepting, drops the loop and joins the thread;
    in-flight service futures settle against closed transports
    harmlessly.  Context-manager use does both.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.connections = 0
        self.frames_in = 0
        self.frames_out = 0
        self.protocol_errors = 0

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "NetServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="serve-net", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def close(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already shut down
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # event-loop side

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - loop crash guard
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle, self._host, self._port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        async with server:
            await self._stop.wait()

    async def _handle(self, reader: asyncio.StreamReader, writer) -> None:
        self.connections += 1
        if _metrics.REGISTRY.enabled:
            _CONNECTIONS.inc()
        decoder = wire.FrameDecoder(wire.MAX_REQUEST_FRAME)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    self._on_protocol_error(writer, exc)
                    return
                for frame in frames:
                    try:
                        request = wire.decode_request(frame)
                    except ProtocolError as exc:
                        self._on_protocol_error(writer, exc)
                        return
                    self.frames_in += 1
                    self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            return
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _on_protocol_error(self, writer, exc: ProtocolError) -> None:
        """Best-effort typed ERROR frame, then drop the connection."""
        self.protocol_errors += 1
        if _metrics.REGISTRY.enabled:
            _PROTOCOL_ERRORS.inc()
        self._write(
            writer,
            wire.encode_response(
                wire.STATUS_ERROR,
                workload="unrank",
                n=0,
                count=0,
                request_id=0,
                message=f"{type(exc).__name__}: {exc}",
            ),
        )

    # ------------------------------------------------------------------ #
    # request dispatch

    def _dispatch(self, request: wire.WireRequest, writer) -> None:
        """Submit one decoded frame; answer admission failures inline."""
        try:
            if request.count == 0:
                raise InvalidRequestError("count must be at least 1")
            future = self.service.submit_wide(
                request.workload,
                request.n,
                request.count,
                request.indices,
            )
        except InvalidRequestError as exc:
            self._respond_error(writer, request, wire.STATUS_INVALID, exc)
            return
        except ServiceOverloadedError as exc:
            self._respond_error(writer, request, wire.STATUS_OVERLOADED, exc)
            return
        except ServiceDegradedError as exc:
            self._respond_error(writer, request, wire.STATUS_DEGRADED, exc)
            return
        except ServiceShutdownError as exc:
            self._respond_error(writer, request, wire.STATUS_SHUTDOWN, exc)
            return
        loop = self._loop

        def _on_done(fut, request=request, writer=writer) -> None:
            # runs on the resolving thread under the service condition:
            # hand straight off to the event loop, do no work here
            try:
                loop.call_soon_threadsafe(self._complete, request, writer, fut)
            except RuntimeError:
                pass  # loop already closed; connection is gone anyway

        future.add_done_callback(_on_done)

    def _complete(self, request: wire.WireRequest, writer, future) -> None:
        """Future resolved: encode and write the response (loop thread)."""
        try:
            resp = future.result(timeout=0)
        except ServiceOverloadedError as exc:
            self._respond_error(writer, request, wire.STATUS_OVERLOADED, exc)
            return
        except ServiceDegradedError as exc:
            self._respond_error(writer, request, wire.STATUS_DEGRADED, exc)
            return
        except ServiceShutdownError as exc:
            self._respond_error(writer, request, wire.STATUS_SHUTDOWN, exc)
            return
        except Exception as exc:
            self._respond_error(writer, request, wire.STATUS_ERROR, exc)
            return
        self._write(
            writer,
            wire.encode_response(
                wire.STATUS_OK,
                workload=resp.workload,
                n=resp.n,
                count=resp.count,
                request_id=request.request_id,
                lanes=resp.lanes,
                mode=resp.mode,
                indices=resp.indices,
                permutations=resp.permutations,
            ),
        )
        if _metrics.REGISTRY.enabled:
            _FRAMES.inc(direction="out", status="ok")

    def _respond_error(self, writer, request: wire.WireRequest, status: int,
                       exc: BaseException) -> None:
        self._write(
            writer,
            wire.encode_response(
                status,
                workload=request.workload,
                n=request.n,
                count=0,
                request_id=request.request_id,
                message=f"{type(exc).__name__}: {exc}",
            ),
        )
        if _metrics.REGISTRY.enabled:
            _FRAMES.inc(direction="out", status=wire.STATUS_NAMES[status])

    def _write(self, writer, payload: bytes) -> None:
        """Write one whole frame; a closed transport swallows it."""
        try:
            if writer.is_closing():
                return
            writer.write(payload)
            self.frames_out += 1
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        return {
            "address": self.address,
            "connections": self.connections,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "protocol_errors": self.protocol_errors,
        }
