"""The ``repro-serve/1`` wire protocol: length-prefixed binary frames.

Grammar (all integers big-endian, "network order")::

    frame    := u32 length ; body                 -- length = len(body)
    request  := u8 version     -- PROTOCOL_VERSION (1)
                u8 workload    -- 0 unrank / 1 random_perm / 2 shuffle
                u8 n
                u8 reserved    -- must be 0
                u32 request_id -- client correlation id, echoed verbatim
                u16 count      -- lanes requested (permutations wanted)
                u16 reserved   -- must be 0
                u64[count] indices      -- unrank only; absent otherwise
    response := u8 version
                u8 status      -- STATUS_* (0 OK)
                u8 workload
                u8 n
                u32 request_id
                u16 count
                u16 lanes      -- sweep occupancy the frame rode in
                u8 mode        -- serving rung tag (MODES)
                u8 reserved
                ok-payload | err-payload
    ok-payload  := u64[count] indices   -- unrank/random_perm: the
                                        -- indices actually unranked
                                        -- (client-side rank oracle);
                                        -- shuffle: absent
                   u8[count*n] permutation elements, row-major
    err-payload := u16 msg_len ; utf-8 message

Design notes, in the spirit of the paper's fixed-format hardware
interface:

* **Caps are part of the grammar.**  A request frame over 64 KiB or a
  count over :data:`MAX_COUNT` (4096, the widest sweep quantum) is a
  *protocol* violation — the codec raises
  :class:`~repro.errors.ProtocolError` before any allocation sized by
  attacker-controlled bytes.  Response frames cap at 1 MiB (4096 lanes
  of n=12 indices + elements fit comfortably).
* **Framing errors poison the stream; semantic errors do not.**  A
  byte-level violation (bad version, unknown tag, truncated or trailing
  bytes) means frame alignment is lost and the connection must close.
  A well-formed frame asking for something unserveable (``count == 0``,
  ``n`` over the service bound, index out of range) is answered with a
  typed ``INVALID`` response and the connection stays up.
* **Permutation elements travel as raw u8 rows.**  The encoder reads
  them straight out of the service's ``(count, n)`` result array — the
  hot path never materialises per-element Python ints.

:class:`FrameDecoder` is the incremental reassembler: feed it whatever
the socket produced and it yields complete frame bodies, carrying
partial frames across reads.  It is deliberately I/O-free so the same
decoder drives the asyncio server, the blocking client and the fuzz
tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError
from repro.serve.model import WORKLOADS

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_REQUEST_FRAME",
    "MAX_RESPONSE_FRAME",
    "MAX_COUNT",
    "STATUS_OK",
    "STATUS_INVALID",
    "STATUS_OVERLOADED",
    "STATUS_DEGRADED",
    "STATUS_SHUTDOWN",
    "STATUS_ERROR",
    "STATUS_NAMES",
    "MODES",
    "FrameDecoder",
    "WireRequest",
    "WireResponse",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
]

PROTOCOL_VERSION = 1

#: Frame-size caps: requests are small (indices only), responses carry
#: permutation rows for up to MAX_COUNT lanes.
MAX_REQUEST_FRAME = 64 * 1024
MAX_RESPONSE_FRAME = 1024 * 1024

#: The widest sweep quantum any engine reports (vector: 4096 lanes).
MAX_COUNT = 4096

STATUS_OK = 0
STATUS_INVALID = 1
STATUS_OVERLOADED = 2
STATUS_DEGRADED = 3
STATUS_SHUTDOWN = 4
STATUS_ERROR = 5

STATUS_NAMES = ("ok", "invalid", "overloaded", "degraded", "shutdown", "error")

#: Serving-rung tags for the response ``mode`` byte, in wire order.
MODES = ("direct", "worker", "fallback", "cached", "unknown")

_WORKLOAD_TAGS = {name: tag for tag, name in enumerate(WORKLOADS)}
_MODE_TAGS = {name: tag for tag, name in enumerate(MODES)}

_REQ_HEADER = struct.Struct("!BBBBIHH")
_RESP_HEADER = struct.Struct("!BBBBIHHBB")
_LEN_PREFIX = struct.Struct("!I")


@dataclass(frozen=True)
class WireRequest:
    """A decoded request frame."""

    workload: str
    n: int
    count: int
    request_id: int
    indices: tuple[int, ...] | None = None


@dataclass(frozen=True)
class WireResponse:
    """A decoded response frame.

    ``permutations`` is a ``(count, n)`` int64 array for ``OK`` frames
    (``None`` otherwise); ``indices`` the echoed unranked indices for
    the deterministic workloads (``None`` for shuffles and errors);
    ``message`` the server's diagnostic for non-``OK`` statuses.
    """

    status: str
    workload: str
    n: int
    count: int
    request_id: int
    lanes: int = 0
    mode: str = "unknown"
    indices: tuple[int, ...] | None = None
    permutations: np.ndarray | None = None
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    ``feed(data)`` buffers ``data`` and returns every frame *body* that
    completed, in order; partial frames wait for the next feed.  An
    oversized or zero-length frame raises
    :class:`~repro.errors.ProtocolError` and poisons the decoder —
    frame alignment is unrecoverable, the caller must drop the
    connection (every later ``feed`` re-raises).
    """

    __slots__ = ("_buf", "_max_frame", "_poisoned")

    def __init__(self, max_frame: int = MAX_REQUEST_FRAME):
        self._buf = bytearray()
        self._max_frame = max_frame
        self._poisoned: ProtocolError | None = None

    @property
    def buffered(self) -> int:
        """Bytes held waiting for their frame to complete."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[bytes]:
        if self._poisoned is not None:
            raise self._poisoned
        self._buf.extend(data)
        frames: list[bytes] = []
        buf = self._buf
        while len(buf) >= _LEN_PREFIX.size:
            (length,) = _LEN_PREFIX.unpack_from(buf)
            if length == 0 or length > self._max_frame:
                self._poisoned = ProtocolError(
                    f"frame of {length} bytes outside 1..{self._max_frame}; "
                    "stream abandoned"
                )
                raise self._poisoned
            end = _LEN_PREFIX.size + length
            if len(buf) < end:
                break
            frames.append(bytes(buf[_LEN_PREFIX.size : end]))
            del buf[:end]
        return frames


def _frame(body: bytes, max_frame: int) -> bytes:
    if len(body) > max_frame:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds cap {max_frame}")
    return _LEN_PREFIX.pack(len(body)) + body


def encode_request(
    workload: str,
    n: int,
    count: int,
    request_id: int = 0,
    indices=None,
) -> bytes:
    """One request frame (length prefix included)."""
    tag = _WORKLOAD_TAGS.get(workload)
    if tag is None:
        raise ProtocolError(f"unknown workload {workload!r}")
    if not (0 <= count <= MAX_COUNT):
        raise ProtocolError(f"count {count} outside 0..{MAX_COUNT}")
    if not (0 <= n <= 0xFF):
        raise ProtocolError(f"n {n} does not fit the wire format")
    header = _REQ_HEADER.pack(
        PROTOCOL_VERSION, tag, n, 0, request_id & 0xFFFFFFFF, count, 0
    )
    if workload == "unrank":
        idx = tuple(indices) if indices is not None else ()
        if len(idx) != count:
            raise ProtocolError(f"unrank frame needs {count} indices, got {len(idx)}")
        body = header + struct.pack(f"!{count}Q", *idx)
    else:
        if indices:
            raise ProtocolError(f"workload {workload!r} carries no indices")
        body = header
    return _frame(body, MAX_REQUEST_FRAME)


def decode_request(body: bytes) -> WireRequest:
    """Decode one request frame body → :class:`WireRequest`.

    Raises :class:`~repro.errors.ProtocolError` on any byte-level
    violation.  Semantic validation (``n`` bounds, index ranges, zero
    count) is the service's job — the codec only guarantees the frame
    parses to exactly one well-formed tuple.
    """
    if len(body) < _REQ_HEADER.size:
        raise ProtocolError(f"request header truncated at {len(body)} bytes")
    version, tag, n, rsv0, request_id, count, rsv1 = _REQ_HEADER.unpack_from(body)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if rsv0 != 0 or rsv1 != 0:
        raise ProtocolError("nonzero reserved bytes in request header")
    if tag >= len(WORKLOADS):
        raise ProtocolError(f"unknown workload tag {tag}")
    if count > MAX_COUNT:
        raise ProtocolError(f"count {count} over protocol cap {MAX_COUNT}")
    workload = WORKLOADS[tag]
    rest = len(body) - _REQ_HEADER.size
    indices: tuple[int, ...] | None = None
    if workload == "unrank":
        if rest != 8 * count:
            raise ProtocolError(
                f"unrank frame carries {rest} index bytes, expected {8 * count}"
            )
        indices = struct.unpack_from(f"!{count}Q", body, _REQ_HEADER.size)
    elif rest != 0:
        raise ProtocolError(f"{workload} frame carries {rest} trailing bytes")
    return WireRequest(
        workload=workload, n=n, count=count, request_id=request_id, indices=indices
    )


def encode_response(
    status: int,
    workload: str,
    n: int,
    count: int,
    request_id: int,
    lanes: int = 0,
    mode: str = "unknown",
    indices=None,
    permutations=None,
    message: str = "",
) -> bytes:
    """One response frame (length prefix included).

    For ``STATUS_OK``, ``permutations`` must be a ``(count, n)`` array;
    its rows are written as raw u8 bytes without materialising Python
    ints.  Any other status writes the diagnostic ``message`` instead.
    """
    tag = _WORKLOAD_TAGS.get(workload)
    if tag is None:
        raise ProtocolError(f"unknown workload {workload!r}")
    header = _RESP_HEADER.pack(
        PROTOCOL_VERSION,
        status,
        tag,
        n,
        request_id & 0xFFFFFFFF,
        count,
        min(lanes, 0xFFFF),
        _MODE_TAGS.get(mode, _MODE_TAGS["unknown"]),
        0,
    )
    if status == STATUS_OK:
        parts = [header]
        if workload != "shuffle":
            idx = tuple(indices) if indices is not None else ()
            if len(idx) != count:
                raise ProtocolError(
                    f"{workload} response needs {count} indices, got {len(idx)}"
                )
            parts.append(struct.pack(f"!{count}Q", *idx))
        rows = np.ascontiguousarray(permutations, dtype=np.int64)
        if rows.shape != (count, n):
            raise ProtocolError(
                f"permutations shaped {rows.shape}, expected {(count, n)}"
            )
        parts.append(rows.astype(np.uint8).tobytes())
        body = b"".join(parts)
    else:
        msg = message.encode("utf-8")[:0xFFFF]
        body = header + struct.pack("!H", len(msg)) + msg
    return _frame(body, MAX_RESPONSE_FRAME)


def decode_response(body: bytes) -> WireResponse:
    """Decode one response frame body → :class:`WireResponse`."""
    if len(body) < _RESP_HEADER.size:
        raise ProtocolError(f"response header truncated at {len(body)} bytes")
    (
        version,
        status,
        tag,
        n,
        request_id,
        count,
        lanes,
        mode_tag,
        rsv,
    ) = _RESP_HEADER.unpack_from(body)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if rsv != 0:
        raise ProtocolError("nonzero reserved byte in response header")
    if status >= len(STATUS_NAMES):
        raise ProtocolError(f"unknown status tag {status}")
    if tag >= len(WORKLOADS):
        raise ProtocolError(f"unknown workload tag {tag}")
    if count > MAX_COUNT:
        raise ProtocolError(f"count {count} over protocol cap {MAX_COUNT}")
    workload = WORKLOADS[tag]
    mode = MODES[mode_tag] if mode_tag < len(MODES) else "unknown"
    off = _RESP_HEADER.size
    if status == STATUS_OK:
        indices: tuple[int, ...] | None = None
        if workload != "shuffle":
            if len(body) - off < 8 * count:
                raise ProtocolError("response index block truncated")
            indices = struct.unpack_from(f"!{count}Q", body, off)
            off += 8 * count
        if len(body) - off != count * n:
            raise ProtocolError(
                f"response carries {len(body) - off} element bytes, "
                f"expected {count * n}"
            )
        perms = (
            np.frombuffer(body, dtype=np.uint8, count=count * n, offset=off)
            .reshape(count, n)
            .astype(np.int64)
        )
        return WireResponse(
            status="ok",
            workload=workload,
            n=n,
            count=count,
            request_id=request_id,
            lanes=lanes,
            mode=mode,
            indices=indices,
            permutations=perms,
        )
    if len(body) - off < 2:
        raise ProtocolError("error response missing message length")
    (msg_len,) = struct.unpack_from("!H", body, off)
    off += 2
    if len(body) - off != msg_len:
        raise ProtocolError("error response message truncated or trailing bytes")
    message = body[off : off + msg_len].decode("utf-8", errors="replace")
    return WireResponse(
        status=STATUS_NAMES[status],
        workload=workload,
        n=n,
        count=count,
        request_id=request_id,
        lanes=lanes,
        mode=mode,
        message=message,
    )
