"""Multi-process serving: shard worker processes + shared-memory rings.

The supervised tier (PR 6) keeps every rung of its degradation ladder in
one process — worker "crashes" are thread deaths, and every sweep still
competes for the same GIL.  This module moves the sweep work into real
worker **processes** so sweeps for different shards (and replicas of the
same shard) run on separate cores:

* one **shard group** per batch key ``(kind, n)``, holding
  ``PoolConfig.workers`` replica processes.  Each replica owns a private
  engine — the wide-lane vector engine when the sweep quantum justifies
  it, the compiled bigint engine otherwise (``engine="auto"``) — plus a
  private :class:`~repro.serve.cache.ResultCache` for converter shards;
* a **control pipe** per replica carries tiny messages only: the sweep
  order (indices or lane count) down, ``(ok, job, rows, hits, misses)``
  back.  The permutation words themselves travel through a
  ``multiprocessing.shared_memory`` **ring buffer** — ``ring_slots``
  sweep-sized slots per replica, written by the child as a NumPy view
  and copied out by the parent in one vectorised memcpy.  Result arrays
  are never pickled on the hot path;
* **supervision** reuses the hardened map-reduce semantics
  (:func:`~repro.parallel.sharding.retry_backoff`): a dead pipe raises
  :class:`~repro.errors.WorkerCrashedError`, a blown sweep deadline
  :class:`~repro.errors.WorkerStalledError`, both retire the replica and
  schedule a respawn with exponential backoff while the sweep retries on
  another replica.  Each group runs the supervised tier's breaker
  ladder — worker rung, checked in-process fallback rung, cache-only —
  so a pool-wide outage degrades exactly like the single-process tier;
* **backpressure** is per shard: every in-flight sweep counts against
  the group's depth (the ``repro_serve_pool_queue_depth`` gauge), and
  :meth:`WorkerPool.admission_gate` sheds new requests with
  :class:`~repro.errors.ServiceOverloadedError` once the depth reaches
  ``queue_limit_sweeps`` — which the socket protocol surfaces as the
  ``OVERLOADED`` status.

Every worker-produced **and** fallback-produced batch is oracle-checked
(:func:`~repro.robustness.checkers.check_served_batch`) before any
future resolves, and a convicted replica is retired — its replacement
process recompiles the kernel from scratch, so quarantine is the respawn
itself.

:class:`PooledService` plugs the pool into the service's execution seam
and hands batch execution to a small thread pool: each in-flight batch
parks its executor thread in ``Connection.poll`` (releasing the GIL)
while a worker process sweeps, which is what lets ``--workers 4`` use
four cores from one front-end process.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.core.factorial import index_width
from repro.errors import (
    FaultDetectedError,
    ServiceDegradedError,
    ServiceOverloadedError,
    WorkerCrashedError,
    WorkerStalledError,
)
from repro.obs import metrics as _metrics
from repro.obs.tracing import Tracer
from repro.parallel.sharding import retry_backoff
from repro.robustness.checkers import check_served_batch
from repro.serve.cache import ResultCache
from repro.serve.engine import ConverterEngine, ShuffleEngine
from repro.serve.service import PermutationService, ServiceConfig, batch_indices
from repro.serve.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    FunctionalConverterEngine,
)

__all__ = ["PoolConfig", "WorkerPool", "PooledService"]

# Injectable clock seam (monotonic), as everywhere else in the repo.
_monotonic = time.monotonic

_POOL_DEPTH = _metrics.REGISTRY.gauge(
    "repro_serve_pool_queue_depth",
    "in-flight sweeps per shard group (pool backpressure signal)",
    ("shard",),
)
_POOL_WORKERS = _metrics.REGISTRY.gauge(
    "repro_serve_pool_workers",
    "live worker processes per shard group",
    ("shard",),
)
_POOL_SWEEPS = _metrics.REGISTRY.counter(
    "repro_serve_pool_sweeps_total",
    "pool sweeps by shard and serving rung",
    ("shard", "rung"),
)
_POOL_RESTARTS = _metrics.REGISTRY.counter(
    "repro_serve_pool_restarts_total",
    "worker-process retirements by shard and reason",
    ("shard", "reason"),
)
_POOL_CACHE = _metrics.REGISTRY.counter(
    "repro_serve_pool_cache_total",
    "worker-side result-cache lookups by shard and result",
    ("shard", "result"),
)
_POOL_WORKER_SWEEPS = _metrics.REGISTRY.counter(
    "repro_serve_pool_worker_sweeps_total",
    "sweeps served per worker replica",
    ("shard", "replica"),
)


# --------------------------------------------------------------------- #
# configuration


@dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs for :class:`WorkerPool`.

    ``workers`` is the replica count per shard group.  ``engine`` picks
    the worker-side sweep backend; the default ``"auto"`` rule follows
    the measured crossover — the NumPy vector engine only beats the
    compiled bigint engine from a few hundred lanes per sweep, so small
    sweep quanta stay compiled.  ``ring_slots`` sizes the shared-memory
    result ring (slots × one full sweep each).  ``queue_limit_sweeps``
    bounds in-flight sweeps per shard before admission sheds (default
    ``4 × workers``).  ``start_method`` picks the multiprocessing start
    method; ``None`` means fork where the platform offers it (worker
    spawn in ~20 ms instead of re-importing the package) and spawn
    elsewhere.  Restart backoff and the two breakers mirror the
    supervised tier; ``check`` enables the per-response oracle.
    """

    workers: int = 2
    engine: str = "auto"
    sweep_deadline_s: float = 10.0
    spawn_timeout_s: float = 60.0
    restart_backoff_s: float = 0.05
    restart_backoff_max_s: float = 1.0
    retries: int = 2
    ring_slots: int = 2
    worker_cache_capacity: int = 4096
    queue_limit_sweeps: "int | None" = None
    start_method: "str | None" = None
    check: bool = True
    fallback: bool = True
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    fallback_breaker: BreakerConfig = field(
        default_factory=lambda: BreakerConfig(failure_threshold=2, recovery_s=0.5)
    )

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.sweep_deadline_s <= 0 or self.spawn_timeout_s <= 0:
            raise ValueError("deadlines must be positive")
        if self.restart_backoff_s < 0 or self.restart_backoff_max_s < 0:
            raise ValueError("restart backoffs must be non-negative")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.ring_slots < 1:
            raise ValueError("ring_slots must be positive")
        if self.queue_limit_sweeps is not None and self.queue_limit_sweeps < 1:
            raise ValueError("queue_limit_sweeps must be positive")

    @property
    def sweep_limit(self) -> int:
        return (
            self.queue_limit_sweeps
            if self.queue_limit_sweeps is not None
            else 4 * self.workers
        )


# --------------------------------------------------------------------- #
# the worker process


def _worker_main(
    conn,
    shm_name: str,
    slots: int,
    slot_lanes: int,
    kind: str,
    n: int,
    backend: str,
    cache_capacity: int,
    shuffle_m: int,
    seed_salt: int,
) -> None:
    """Worker-process entry point: build one engine, sweep forever.

    The child's first act is disabling the (inherited, under fork) global
    metrics registry — worker-side observability flows back over the
    control pipe as plain counts, never through a forked registry whose
    series nobody will ever scrape.  The engine is built eagerly so a
    failed kernel compile surfaces as a failed spawn in the parent, not
    as a broken first sweep.

    Protocol (all tiny tuples; permutation words go through the ring):

    * ``("sweep", job_id, payload)`` → write the ``(rows, n)`` result
      into ring slot ``job_id % slots``, reply
      ``("ok", job_id, rows, hits, misses)`` — or ``("err", job_id,
      type_name, detail)`` if the sweep raised;
    * ``("crash",)`` → ``os._exit(13)`` (the chaos harness's simulated
      hard crash — no cleanup, exactly like a segfault);
    * ``("stall", seconds)`` → sleep (simulated stuck kernel);
    * ``("stop",)`` / EOF → clean exit.
    """
    _metrics.REGISTRY.disable()
    # under fork the child inherits the parent's signal dispositions
    # (the CLI's listen mode remaps SIGTERM to a clean-drain raise);
    # reset to defaults so the supervisor's terminate() stays a kill
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    try:
        shm = shared_memory.SharedMemory(name=shm_name, track=False)
    except TypeError:
        # Python < 3.13 has no ``track`` flag and registers every attach
        # with the resource tracker — which the parent (who owns the
        # segment) already did, so the duplicate would make the tracker
        # unlink or double-unregister the ring.  Suppress registration
        # for just this attach instead.
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: (
            None if rtype == "shared_memory" else orig_register(name, rtype)
        )
        try:
            shm = shared_memory.SharedMemory(name=shm_name)
        finally:
            resource_tracker.register = orig_register
    ring = np.ndarray((slots, slot_lanes, n), dtype=np.int64, buffer=shm.buf)
    cache: ResultCache | None = None
    try:
        if kind == "shuffle":
            engine = ShuffleEngine(n, m=shuffle_m, seed_salt=seed_salt)
        else:
            engine = ConverterEngine(n, backend=backend)
            cache = ResultCache(cache_capacity)
        conn.send(("ready", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            tag = msg[0]
            if tag == "sweep":
                _, job_id, payload = msg
                try:
                    hits = misses = 0
                    if kind == "shuffle":
                        rows = int(payload)
                        perms = engine.run(rows)
                    else:
                        rows = len(payload)
                        perms, hits, misses = _cached_convert(
                            engine, cache, payload, n
                        )
                    ring[job_id % slots, :rows] = perms
                    conn.send(("ok", job_id, rows, hits, misses))
                except Exception as exc:  # noqa: BLE001 - reported upstream
                    conn.send(("err", job_id, type(exc).__name__, str(exc)))
            elif tag == "crash":
                os._exit(13)
            elif tag == "stall":
                time.sleep(float(msg[1]))
            elif tag == "stop":
                return
    finally:
        shm.close()


def _cached_convert(engine, cache, indices, n: int):
    """Converter sweep through the worker-side cache → ``(perms, h, m)``."""
    out = np.empty((len(indices), n), dtype=np.int64)
    missing: list[int] = []
    missing_pos: list[int] = []
    for pos, idx in enumerate(indices):
        row = cache.get(idx)
        if row is None:
            missing.append(idx)
            missing_pos.append(pos)
        else:
            out[pos] = row
    if missing:
        computed = engine.run(missing)
        for j, pos in enumerate(missing_pos):
            out[pos] = computed[j]
            # row copies: the cache must outlive this sweep's array
            cache.put(missing[j], computed[j].copy())
    return out, len(indices) - len(missing), len(missing)


# --------------------------------------------------------------------- #
# parent-side replica handle


class _WorkerProc:
    """One replica process: control pipe + private shared-memory ring.

    The parent creates the ring *before* spawning so both sides map the
    same segment; the child writes sweeps into slot ``job_id % slots``
    and the parent copies the slot out (one vectorised memcpy) before
    the replica is released — so a slot is never overwritten while its
    rows are still being encoded.
    """

    def __init__(self, key, replica: int, worker_id: int, ctx, config: PoolConfig,
                 slot_lanes: int, backend: str, shuffle_m: int, seed_salt: int):
        kind, n = key
        self.key = key
        self.replica = replica
        self.worker_id = worker_id
        self.busy = False
        self.pid: int | None = None
        self.sweeps = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.last_hits = 0
        self.last_misses = 0
        self._jobs = 0
        self._slots = config.ring_slots
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, config.ring_slots * slot_lanes * n * 8)
        )
        self._ring = np.ndarray(
            (config.ring_slots, slot_lanes, n), dtype=np.int64, buffer=self._shm.buf
        )
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._shm.name,
                config.ring_slots,
                slot_lanes,
                kind,
                n,
                backend,
                config.worker_cache_capacity,
                shuffle_m,
                seed_salt,
            ),
            name=f"serve-pool-{kind}-{n}-{worker_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self._dead = False

    # ------------------------------------------------------------------ #

    def wait_ready(self, timeout_s: float) -> None:
        """Block until the child reports its engine built (or fail typed)."""
        try:
            if not self._conn.poll(timeout_s):
                raise WorkerStalledError(
                    f"worker for shard {self.key} failed to become ready "
                    f"within {timeout_s:g}s"
                )
            msg = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashedError(
                f"worker for shard {self.key} died during spawn"
            ) from exc
        if msg[0] != "ready":
            raise WorkerCrashedError(
                f"worker for shard {self.key} spoke out of turn: {msg[0]!r}"
            )
        self.pid = msg[1]

    @property
    def alive(self) -> bool:
        return not self._dead and self._proc.is_alive()

    def sweep(self, payload, rows: int, deadline_s: float) -> np.ndarray:
        """One sweep on this replica → ``(rows, n)`` rows (a fresh copy)."""
        job_id = self._jobs
        self._jobs += 1
        try:
            self._conn.send(("sweep", job_id, payload))
            if not self._conn.poll(deadline_s):
                raise WorkerStalledError(
                    f"worker {self.worker_id} for shard {self.key} missed its "
                    f"{deadline_s:g}s sweep deadline (stall detected)"
                )
            msg = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashedError(
                f"worker {self.worker_id} for shard {self.key} died mid-sweep"
            ) from exc
        if msg[0] == "err":
            raise RuntimeError(f"worker sweep failed: {msg[2]}: {msg[3]}")
        if msg[0] != "ok" or msg[1] != job_id or msg[2] != rows:
            raise WorkerCrashedError(
                f"worker {self.worker_id} for shard {self.key} desynchronised "
                f"(got {msg[:3]!r}, expected ('ok', {job_id}, {rows}))"
            )
        self.sweeps += 1
        self.last_hits, self.last_misses = msg[3], msg[4]
        self.cache_hits += msg[3]
        self.cache_misses += msg[4]
        # the one parent-side copy: frees the ring slot for the next job
        # while the caller's response encodes asynchronously
        return self._ring[job_id % self._slots, :rows].copy()

    def send_crash(self) -> bool:
        """Chaos hook: order the child to die with ``os._exit`` (no cleanup)."""
        try:
            self._conn.send(("crash",))
            return True
        except (OSError, ValueError):
            return False

    def kill(self) -> None:
        self._dead = True
        try:
            self._conn.close()
        except OSError:
            pass
        self._proc.terminate()
        self._proc.join(timeout=5.0)
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            pass


# --------------------------------------------------------------------- #
# shard groups


class _ShardGroup:
    """Pool-side state for one ``(kind, n)`` shard group."""

    __slots__ = (
        "key",
        "label",
        "cond",
        "replicas",
        "retry_at",
        "failures",
        "slot_spawns",
        "restarts",
        "depth",
        "breaker",
        "fallback_breaker",
        "fallback_engine",
        "fallback_lock",
        "served",
        "retired",
    )

    def __init__(self, key, config: PoolConfig):
        self.key = key
        self.label = f"{key[0]}:{key[1]}"
        self.cond = threading.Condition()
        self.replicas: list[_WorkerProc | None] = [None] * config.workers
        self.retry_at = [0.0] * config.workers
        self.failures = [0] * config.workers
        self.slot_spawns = [0] * config.workers
        self.restarts = 0
        self.depth = 0
        self.breaker = CircuitBreaker(config.breaker)
        self.fallback_breaker = CircuitBreaker(config.fallback_breaker)
        self.fallback_engine = None
        self.fallback_lock = threading.Lock()
        self.served = {"worker": 0, "fallback": 0}
        self.retired: list[_WorkerProc] = []  # keeps stats of dead replicas


class WorkerPool:
    """Shard-group process pool with shared-memory result transport."""

    def __init__(
        self,
        config: PoolConfig | None = None,
        *,
        slot_lanes: int,
        shuffle_m: int = 31,
        rng_seed: int = 0,
    ):
        self.config = config or PoolConfig()
        self.slot_lanes = slot_lanes
        self.shuffle_m = shuffle_m
        self.rng_seed = rng_seed
        self._ctx = self._resolve_ctx(self.config.start_method)
        self._lock = threading.Lock()
        self._groups: dict[tuple, _ShardGroup] = {}
        self._worker_ids = itertools.count()
        self._closed = False

    @staticmethod
    def _resolve_ctx(start_method: str | None):
        if start_method is not None:
            return multiprocessing.get_context(start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    # ------------------------------------------------------------------ #
    # admission

    def admission_gate(self, key) -> None:
        """Per-shard backpressure + degradation veto (lock-free healthy path).

        Raises :class:`~repro.errors.ServiceOverloadedError` once the
        shard's in-flight sweep depth reaches the limit — the wire
        protocol's ``OVERLOADED`` — and
        :class:`~repro.errors.ServiceDegradedError` when both the worker
        and fallback breakers are open (cache-only mode).  A shard
        nobody has used yet admits unconditionally.
        """
        group = self._groups.get(key)
        if group is None:
            return
        depth = group.depth  # GIL-atomic read; execute re-checks nothing —
        # depth overshoot by a racing request is one sweep, not a leak
        limit = self.config.sweep_limit
        if depth >= limit:
            raise ServiceOverloadedError(
                f"shard {key} has {depth} sweeps in flight (limit {limit}); "
                "request shed",
                queue_depth=depth,
                limit=limit,
            )
        if group.breaker._opened_at is None:
            return  # healthy fast path: one dict read + two attribute reads
        with group.cond:
            if group.breaker.allow():
                return
            if self.config.fallback and group.fallback_breaker.allow():
                return
        raise ServiceDegradedError(
            f"shard {key} is degraded to cache-only mode; request shed",
            mode="cache_only",
            shard=key,
        )

    # ------------------------------------------------------------------ #
    # execution

    def execute(self, key, payload, rows: int, span=None):
        """One sweep through the shard's ladder → ``(perms, mode)``.

        ``payload`` is the index list (converter) or lane count
        (shuffle); ``rows`` the expected result rows.  Worker failures
        retire the replica (respawn with backoff) and retry on another,
        up to ``retries`` extra attempts; past the worker rung the sweep
        runs on the checked in-process fallback; past that it raises
        :class:`~repro.errors.ServiceDegradedError` — never a wrong
        result.
        """
        metrics_on = _metrics.REGISTRY.enabled
        group = self._group(key)
        indices = payload if isinstance(payload, (list, tuple)) else None
        with group.cond:
            group.depth += 1
            if metrics_on:
                _POOL_DEPTH.set(group.depth, shard=group.label)
        try:
            attempts = 0
            while attempts <= self.config.retries:
                attempts += 1
                worker = self._acquire(group)
                if worker is None:
                    break
                attempt_span = (
                    span.child(
                        "serve.pool_sweep",
                        shard=group.label,
                        replica=worker.replica,
                        pid=worker.pid,
                    )
                    if span is not None
                    else None
                )
                try:
                    perms = worker.sweep(
                        payload, rows, self.config.sweep_deadline_s
                    )
                    if self.config.check:
                        check_served_batch(perms, indices)
                except FaultDetectedError as exc:
                    if attempt_span is not None:
                        attempt_span.end("error", error=str(exc))
                    self._retire(group, worker, "check_failure")
                except (WorkerCrashedError, WorkerStalledError) as exc:
                    reason = (
                        "stall" if isinstance(exc, WorkerStalledError) else "crash"
                    )
                    if attempt_span is not None:
                        attempt_span.end("error", error=str(exc))
                    self._retire(group, worker, reason)
                except Exception as exc:
                    if attempt_span is not None:
                        attempt_span.end("error", error=str(exc))
                    self._release(group, worker, failed=True)
                else:
                    if attempt_span is not None:
                        attempt_span.end("ok")
                    self._release(group, worker, failed=False)
                    if metrics_on:
                        _POOL_SWEEPS.inc(shard=group.label, rung="worker")
                        _POOL_WORKER_SWEEPS.inc(
                            shard=group.label, replica=str(worker.replica)
                        )
                        if indices is not None:
                            if worker.last_hits:
                                _POOL_CACHE.inc(
                                    worker.last_hits,
                                    shard=group.label,
                                    result="hit",
                                )
                            if worker.last_misses:
                                _POOL_CACHE.inc(
                                    worker.last_misses,
                                    shard=group.label,
                                    result="miss",
                                )
                    with group.cond:
                        group.served["worker"] += 1
                    return perms, "worker"
            perms = self._run_fallback(group, payload, rows, indices, span)
            if metrics_on:
                _POOL_SWEEPS.inc(shard=group.label, rung="fallback")
            with group.cond:
                group.served["fallback"] += 1
            return perms, "fallback"
        finally:
            with group.cond:
                group.depth -= 1
                if metrics_on:
                    _POOL_DEPTH.set(group.depth, shard=group.label)
                group.cond.notify_all()

    def _run_fallback(self, group, payload, rows, indices, span=None):
        """The checked in-process rung; raises past it."""
        with group.cond:
            allowed = (
                self.config.fallback
                and not self._closed
                and group.fallback_breaker.allow()
            )
            if allowed and group.fallback_engine is None:
                kind, n = group.key
                group.fallback_engine = (
                    ShuffleEngine(
                        n,
                        m=self.shuffle_m,
                        seed_salt=self.rng_seed + 104729,
                    )
                    if kind == "shuffle"
                    else FunctionalConverterEngine(n)
                )
            engine = group.fallback_engine
        if allowed:
            fspan = (
                span.child("serve.pool_fallback", shard=group.label)
                if span is not None
                else None
            )
            try:
                # the shuffle fallback advances LFSR state per sweep and
                # the functional converter is stateless; one lock covers
                # both without contention (fallback is the cold rung)
                with group.fallback_lock:
                    perms = engine.run(payload)
                if self.config.check:
                    check_served_batch(perms, indices)
            except Exception as exc:  # noqa: BLE001 - breaker accounting
                if fspan is not None:
                    fspan.end("error", error=f"{type(exc).__name__}: {exc}")
                with group.cond:
                    group.fallback_breaker.record_failure()
            else:
                if fspan is not None:
                    fspan.end("ok")
                with group.cond:
                    group.fallback_breaker.record_success()
                return perms
        raise ServiceDegradedError(
            f"shard {group.key} is degraded to cache-only mode "
            "(worker and fallback rungs unavailable)",
            mode="cache_only",
            shard=group.key,
        )

    # ------------------------------------------------------------------ #
    # replica management

    def _acquire(self, group: _ShardGroup) -> _WorkerProc | None:
        """An idle live replica (marked busy) — spawning one if a slot is
        free and past its backoff — or ``None`` when the worker rung is
        unavailable (breaker open, pool closed, every replica stuck past
        the sweep deadline)."""
        end = _monotonic() + self.config.sweep_deadline_s
        with group.cond:
            while True:
                if self._closed or not group.breaker.allow():
                    return None
                spawn_slot = None
                now = _monotonic()
                for slot, worker in enumerate(group.replicas):
                    if worker is None:
                        if spawn_slot is None and now >= group.retry_at[slot]:
                            spawn_slot = slot
                        continue
                    if worker.busy:
                        continue
                    if not worker.alive:
                        # found dead while idle (chaos kill between
                        # sweeps): retire in place and keep scanning.
                        # kill() here is immediate — the process is
                        # already gone — and releases its ring segment
                        self._retire_locked(group, slot, worker, "crash")
                        worker.kill()
                        if spawn_slot is None and _monotonic() >= group.retry_at[slot]:
                            spawn_slot = slot
                        continue
                    worker.busy = True
                    return worker
                if spawn_slot is not None:
                    worker = self._spawn_locked(group, spawn_slot)
                    if worker is not None:
                        worker.busy = True
                        return worker
                    continue  # spawn failed: backoff was scheduled, rescan
                left = end - _monotonic()
                if left <= 0:
                    return None
                group.cond.wait(timeout=min(left, 0.05))

    def _spawn_locked(self, group: _ShardGroup, slot: int) -> _WorkerProc | None:
        """Spawn one replica into ``slot`` (group lock held)."""
        kind, n = group.key
        worker_id = next(self._worker_ids)
        respawn = group.slot_spawns[slot] > 0
        try:
            worker = _WorkerProc(
                group.key,
                slot,
                worker_id,
                self._ctx,
                self.config,
                self.slot_lanes,
                self._backend_for(n),
                self.shuffle_m,
                # distinct salt per spawned shuffle worker: a restarted
                # replica must not replay its predecessor's LFSR stream
                self.rng_seed + 7919 * (worker_id + 1),
            )
            worker.wait_ready(self.config.spawn_timeout_s)
        except Exception:
            group.failures[slot] += 1
            group.retry_at[slot] = _monotonic() + retry_backoff(
                group.failures[slot],
                self.config.restart_backoff_s,
                cap=self.config.restart_backoff_max_s,
            )
            group.breaker.record_failure()
            if _metrics.REGISTRY.enabled:
                _POOL_RESTARTS.inc(shard=group.label, reason="spawn_failed")
            return None
        group.replicas[slot] = worker
        group.slot_spawns[slot] += 1
        if respawn:
            group.restarts += 1
            if _metrics.REGISTRY.enabled:
                _POOL_RESTARTS.inc(shard=group.label, reason="respawn")
        if _metrics.REGISTRY.enabled:
            _POOL_WORKERS.set(
                sum(1 for w in group.replicas if w is not None and w.alive),
                shard=group.label,
            )
        return worker

    def _backend_for(self, n: int) -> str:
        """The measured-crossover rule for ``engine="auto"``.

        The vector engine's per-lane cost only drops below the compiled
        engine's from a few hundred lanes per sweep, and its uint64
        index bus caps the index width at 64 bits — below either bound
        the compiled engine wins.
        """
        if self.config.engine != "auto":
            return self.config.engine
        if self.slot_lanes >= 256 and index_width(n) <= 64:
            return "vector"
        return "compiled"

    def _release(self, group: _ShardGroup, worker: _WorkerProc, failed: bool) -> None:
        with group.cond:
            worker.busy = False
            if failed:
                group.breaker.record_failure()
            else:
                group.breaker.record_success()
                group.failures[worker.replica] = 0
            group.cond.notify_all()

    def _retire(self, group: _ShardGroup, worker: _WorkerProc, reason: str) -> None:
        """Retire a failed replica: backoff its slot, kill the process."""
        with group.cond:
            self._retire_locked(group, worker.replica, worker, reason)
            group.cond.notify_all()
        worker.kill()

    def _retire_locked(
        self, group: _ShardGroup, slot: int, worker: _WorkerProc, reason: str
    ) -> None:
        if group.replicas[slot] is worker:
            group.replicas[slot] = None
        worker.busy = False
        group.retired.append(worker)
        group.failures[slot] += 1
        group.retry_at[slot] = _monotonic() + retry_backoff(
            group.failures[slot],
            self.config.restart_backoff_s,
            cap=self.config.restart_backoff_max_s,
        )
        group.breaker.record_failure()
        if _metrics.REGISTRY.enabled:
            _POOL_RESTARTS.inc(shard=group.label, reason=reason)
            _POOL_WORKERS.set(
                sum(1 for w in group.replicas if w is not None and w.alive),
                shard=group.label,
            )

    def _group(self, key) -> _ShardGroup:
        with self._lock:
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _ShardGroup(key, self.config)
            return group

    # ------------------------------------------------------------------ #
    # chaos

    def kill_worker(self, key=None) -> tuple | None:
        """Order one live worker process to hard-crash (chaos hook).

        With ``key`` given, targets that shard group; otherwise the
        first group with a live replica.  Returns ``(key, replica)`` of
        the victim or ``None`` when no live worker exists.  The child
        dies via ``os._exit`` at its next pipe read — mid-sweep or idle —
        and the supervision path must absorb it: retire, respawn with
        backoff, retry the sweep elsewhere, serve zero wrong results.
        """
        with self._lock:
            groups = (
                [self._groups[key]]
                if key is not None and key in self._groups
                else list(self._groups.values())
            )
        for group in groups:
            with group.cond:
                for worker in group.replicas:
                    if worker is not None and worker.alive:
                        if worker.send_crash():
                            return (group.key, worker.replica)
        return None

    # ------------------------------------------------------------------ #
    # introspection / lifecycle

    def worker_rows(self) -> list[dict]:
        """Per-replica liveness rows (the ``obs top`` worker table)."""
        rows = []
        with self._lock:
            groups = list(self._groups.values())
        for group in groups:
            with group.cond:
                for slot, worker in enumerate(group.replicas):
                    if worker is None:
                        continue
                    rows.append(
                        {
                            "shard": group.label,
                            "replica": slot,
                            "pid": worker.pid,
                            "alive": worker.alive,
                            "busy": worker.busy,
                            "sweeps": worker.sweeps,
                            "cache_hits": worker.cache_hits,
                            "cache_misses": worker.cache_misses,
                            "restarts": group.restarts,
                        }
                    )
        return rows

    def stats(self) -> dict:
        with self._lock:
            groups = list(self._groups.items())
        shards = {}
        totals = {
            "restarts": 0,
            "served_worker": 0,
            "served_fallback": 0,
            "workers_alive": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        for key, group in groups:
            with group.cond:
                live = [w for w in group.replicas if w is not None]
                everyone = live + group.retired
                alive = sum(1 for w in live if w.alive)
                hits = sum(w.cache_hits for w in everyone)
                misses = sum(w.cache_misses for w in everyone)
                shards[str(key)] = {
                    "workers_alive": alive,
                    "depth": group.depth,
                    "restarts": group.restarts,
                    "served": dict(group.served),
                    "breaker": group.breaker.state,
                    "fallback_breaker": group.fallback_breaker.state,
                    "cache_hits": hits,
                    "cache_misses": misses,
                }
                totals["restarts"] += group.restarts
                totals["served_worker"] += group.served["worker"]
                totals["served_fallback"] += group.served["fallback"]
                totals["workers_alive"] += alive
                totals["cache_hits"] += hits
                totals["cache_misses"] += misses
        return {"shards": shards, **totals}

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            groups = list(self._groups.values())
        for group in groups:
            with group.cond:
                workers = [w for w in group.replicas if w is not None]
                group.replicas = [None] * len(group.replicas)
                group.cond.notify_all()
            for worker in workers:
                group.retired.append(worker)
                worker.kill()


# --------------------------------------------------------------------- #
# the pooled service


class PooledService(PermutationService):
    """:class:`PermutationService` swept by worker processes.

    The admission/batching/caching hot path is inherited; the seams
    change as follows:

    * ``_run_sweep`` routes each closed batch to the
      :class:`WorkerPool` — the sweep happens in a worker process, the
      result comes back through shared memory;
    * ``_execute`` hands the batch to a small thread pool, so the
      submitting thread (or the asyncio front end behind it) returns as
      soon as the batch is enqueued while an executor thread parks in
      the worker pipe — with the GIL released — for the sweep;
    * ``_degrade_gate`` consults the pool: per-shard sweep-depth
      backpressure sheds with ``ServiceOverloadedError``, a fully-open
      breaker ladder sheds misses with ``ServiceDegradedError``.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        pool: PoolConfig | None = None,
        tracer: Tracer | None = None,
    ):
        cfg = config or ServiceConfig()
        pool_cfg = pool or PoolConfig()
        self.pool = WorkerPool(
            pool_cfg,
            slot_lanes=cfg.max_batch,
            shuffle_m=cfg.shuffle_m,
            rng_seed=cfg.rng_seed,
        )
        self._sweep_exec = ThreadPoolExecutor(
            max_workers=max(4, 2 * pool_cfg.workers),
            thread_name_prefix="serve-sweep",
        )
        super().__init__(cfg, tracer=tracer)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        # order matters: the base close drains the dispatcher and then
        # _drain_executors waits for every in-flight sweep, so no worker
        # is killed under a live sweep
        super().close()
        self.pool.close()

    def stats(self) -> dict:
        stats = super().stats()
        stats["pool"] = self.pool.stats()
        return stats

    # ------------------------------------------------------------------ #
    # the seams

    def _degrade_gate(self, workload: str, key: tuple[str, int]) -> None:
        self.pool.admission_gate(key)

    def _drain_executors(self) -> None:
        self._sweep_exec.shutdown(wait=True)

    def _run_sweep(self, batch, kind: str, n: int, span=None):
        payload = batch.lanes if kind == "shuffle" else batch_indices(batch)
        return self.pool.execute(batch.key, payload, batch.lanes, span)

    def _execute(self, batch) -> None:
        try:
            self._sweep_exec.submit(self._execute_now, batch)
        except RuntimeError:
            # executor already shut down (close raced a straggler batch):
            # run inline so the entries' futures still settle
            self._execute_now(batch)

    def _execute_now(self, batch) -> None:
        try:
            PermutationService._execute(self, batch)
        except BaseException as exc:  # pragma: no cover - belt: never hang
            with self._cond:
                for e in batch.entries:
                    if not e.future.done():
                        e.future._finish(None, exc)
                self._cond.notify_all()
            raise
