"""Chaos harness for the supervised serving tier.

The supervised tier's claims — no wrong permutation is ever served, every
killed worker is restarted, availability survives degradation — are only
worth stating if something actually kills workers and corrupts payloads.
This module is that something.

:class:`ChaosMonkey` is the injection policy.  Workers consult it before
and after every sweep (see :class:`~repro.serve.supervisor.ShardWorker`)
and it answers with a :class:`SweepPlan` drawn from one seeded RNG under
one lock, so a campaign is reproducible for a given seed regardless of
thread interleaving *in what it injects* (which sweep a given request
lands in still depends on scheduling).  Five events cover the failure
taxonomy:

``crash``
    The worker raises :class:`~repro.errors.WorkerCrashedError` — its
    thread exits like a dying worker process.  Exercises restart +
    backoff.
``stall``
    The worker sleeps past the supervisor's sweep deadline.  Exercises
    stall detection and abandoned-worker replacement (the late result is
    discarded, never served).
``delay``
    A short sleep *inside* the deadline — jitter, not a failure; the
    sweep must still succeed.
``corrupt``
    One element of the result is bit-flipped, which always breaks
    bijectivity (the flipped value duplicates another element or leaves
    ``0..n−1``).  Exercises the bijectivity check and kernel quarantine.
``swap``
    Two elements of one lane are swapped: still a valid permutation,
    just the *wrong* one.  Only the independent rank-oracle can convict
    it — this is the silent-corruption case the end-to-end check exists
    for.  (A swapped *shuffle* lane is indistinguishable from a fair
    draw and is deliberately not convicted.)

For exact unit tests, ``script`` mode replaces the dice entirely: a
mapping of global sweep ordinal → event name fires each event at a known
sweep and nothing else.

:func:`run_chaos_campaign` is the end-to-end harness behind
``repro serve --chaos`` and the CI smoke: drive a closed loop through a
:class:`~repro.serve.supervisor.SupervisedService` with chaos armed and
every response client-side verified, disarm, drive a recovery phase, and
report the invariants (zero incorrect responses, restarts, breaker
trips, availability) as the ``serving_chaos/v1`` payload written to
``results/serving_chaos.json``.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError, WorkerCrashedError
from repro.serve import supervisor as _sup
from repro.serve.loadgen import LoadReport, run_closed_loop
from repro.serve.service import ServiceConfig
from repro.serve.supervisor import (
    BreakerConfig,
    SupervisedService,
    SupervisorConfig,
)

__all__ = ["CHAOS_EVENTS", "ChaosSpec", "SweepPlan", "ChaosMonkey", "run_chaos_campaign"]

#: Injectable failure events, in taxonomy order.
CHAOS_EVENTS = ("crash", "stall", "delay", "corrupt", "swap")


@dataclass(frozen=True)
class ChaosSpec:
    """Per-sweep injection probabilities and magnitudes.

    Probabilities are independent draws folded into one categorical
    choice per sweep (at most one event fires per sweep), so their sum
    must stay ≤ 1.  ``stall_s`` must exceed the supervisor's sweep
    deadline to register as a stall; ``delay_s`` must stay inside it.
    ``fallback_corrupt_p`` optionally corrupts the *fallback* rung too,
    for exercising the full descent to cache-only mode.
    """

    crash_p: float = 0.05
    stall_p: float = 0.03
    delay_p: float = 0.05
    corrupt_p: float = 0.04
    swap_p: float = 0.03
    stall_s: float = 0.35
    delay_s: float = 0.01
    fallback_corrupt_p: float = 0.0

    def __post_init__(self) -> None:
        probs = (self.crash_p, self.stall_p, self.delay_p, self.corrupt_p, self.swap_p)
        if any(p < 0 for p in probs) or self.fallback_corrupt_p < 0:
            raise ValueError("chaos probabilities must be non-negative")
        if sum(probs) > 1.0:
            raise ValueError("chaos probabilities must sum to at most 1")


class SweepPlan:
    """One sweep's injection decision, frozen at draw time.

    ``before()`` runs in the executing thread before the engine sweep
    (crashes and sleeps happen here); ``apply(perms)`` transforms the
    result after it (payload corruption happens here, on a copy — the
    engine's own buffers are never poisoned).
    """

    __slots__ = ("event", "stall_s", "delay_s")

    def __init__(self, event: str, stall_s: float = 0.0, delay_s: float = 0.0):
        if event not in CHAOS_EVENTS:
            raise ValueError(f"unknown chaos event {event!r}")
        self.event = event
        self.stall_s = stall_s
        self.delay_s = delay_s

    def before(self) -> None:
        if self.event == "crash":
            raise WorkerCrashedError("chaos: worker crashed mid-sweep")
        if self.event == "stall":
            _sup._sleep(self.stall_s)
        elif self.event == "delay":
            _sup._sleep(self.delay_s)

    def apply(self, perms: np.ndarray) -> np.ndarray:
        if self.event == "corrupt":
            perms = np.array(perms, copy=True)
            # a single bit-flip always breaks bijectivity: the flipped
            # value either duplicates another element or leaves 0..n−1
            perms[0, 0] ^= 1
            return perms
        if self.event == "swap":
            perms = np.array(perms, copy=True)
            perms[0, 0], perms[0, 1] = int(perms[0, 1]), int(perms[0, 0])
            return perms
        return perms


class ChaosMonkey:
    """Seeded, thread-safe injection policy shared by all workers.

    Either probabilistic (``spec``) or scripted (``script``: global
    sweep ordinal → event name; sweeps not listed run clean).  One lock
    guards the RNG and the sweep counter so a draw is atomic; per-event
    injection counts are kept for the campaign report.  :meth:`disarm`
    starts the recovery phase — armed state is checked per draw, so
    in-flight sweeps finish under whichever policy caught them.
    """

    def __init__(
        self,
        spec: ChaosSpec | None = None,
        seed: int = 0,
        script: dict[int, str] | None = None,
    ):
        self.spec = spec or ChaosSpec()
        self.script = dict(script) if script is not None else None
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._armed = True
        self.sweeps = 0
        self.fallback_sweeps = 0
        self.injected: dict[str, int] = {e: 0 for e in CHAOS_EVENTS}
        self.fallback_injected = 0

    def disarm(self) -> None:
        with self._lock:
            self._armed = False

    def arm(self) -> None:
        with self._lock:
            self._armed = True

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values()) + self.fallback_injected

    # ------------------------------------------------------------------ #

    def plan_sweep(self, key, worker_id: int) -> SweepPlan | None:
        """One atomic draw for a worker sweep — a plan, or clean (None)."""
        with self._lock:
            ordinal = self.sweeps
            self.sweeps += 1
            if not self._armed:
                return None
            event = self._draw(ordinal)
            if event is None:
                return None
            self.injected[event] += 1
        return SweepPlan(event, stall_s=self.spec.stall_s, delay_s=self.spec.delay_s)

    def plan_fallback(self, key) -> SweepPlan | None:
        """Fallback-rung corruption draw (off unless the spec enables it)."""
        with self._lock:
            self.fallback_sweeps += 1
            if not self._armed or self.script is not None:
                return None
            if self._rng.random() >= self.spec.fallback_corrupt_p:
                return None
            self.fallback_injected += 1
        return SweepPlan("corrupt")

    def _draw(self, ordinal: int) -> str | None:
        """Caller holds the lock."""
        if self.script is not None:
            return self.script.get(ordinal)
        roll = self._rng.random()
        edge = 0.0
        spec = self.spec
        for event, p in (
            ("crash", spec.crash_p),
            ("stall", spec.stall_p),
            ("delay", spec.delay_p),
            ("corrupt", spec.corrupt_p),
            ("swap", spec.swap_p),
        ):
            edge += p
            if roll < edge:
                return event
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "sweeps": self.sweeps,
                "fallback_sweeps": self.fallback_sweeps,
                "injected": dict(self.injected),
                "fallback_injected": self.fallback_injected,
                "armed": self._armed,
            }


# --------------------------------------------------------------------- #
# the end-to-end campaign


def _phase_summary(report: LoadReport) -> dict:
    pcts = report.latency_percentiles()
    return {
        "completed": report.completed,
        "shed": report.shed,
        "degraded_shed": report.degraded_shed,
        "abandoned": report.abandoned,
        "degraded_responses": report.degraded_responses,
        "incorrect": report.incorrect,
        "availability": round(report.availability, 6),
        "modes": dict(report.modes),
        "throughput_rps": round(report.throughput_rps, 1),
        "p50_ms": round(pcts["p50"] * 1e3, 3),
        "p99_ms": round(pcts["p99"] * 1e3, 3),
    }


def _settle_shards(service: SupervisedService, timeout_s: float = 5.0) -> int:
    """Probe degraded shards until every breaker re-closes (or timeout).

    A campaign can outrun its own breakers: a trip in the last sweeps of
    the chaos phase leaves the worker breaker OPEN for ``recovery_s``,
    and a short recovery phase may finish inside that window — the tier
    is healing, the final read is just too early.  Breakers only close
    on *traffic* (a half-open probe must succeed), so waiting alone is
    not enough either.  This loop sends one oracle-checked sweep through
    the supervisor per unhealthy shard per round — bypassing the cache,
    which would otherwise swallow the probe — until every shard reads
    ``full``.  Returns the number of probe sweeps it took.
    """
    supervisor = service.supervisor
    probes = 0
    deadline = _sup._monotonic() + timeout_s
    while _sup._monotonic() < deadline:
        lagging = [
            key
            for key in list(supervisor._shards)
            if supervisor.mode_for(key) != "full"
        ]
        if not lagging:
            break
        for key in lagging:
            payload = 1 if key[0] == "shuffle" else [0]
            probes += 1
            try:
                supervisor.execute(key, payload)
            except ReproError:
                pass  # still degraded; the next round retries
        _sup._sleep(0.02)  # let recovery_s / restart backoff elapse
    return probes


def run_chaos_campaign(
    n: int = 6,
    requests: int = 400,
    recovery_requests: int = 150,
    clients: int = 8,
    seed: int = 0,
    spec: ChaosSpec | None = None,
    service_config: ServiceConfig | None = None,
    supervisor_config: SupervisorConfig | None = None,
    tracer=None,
) -> dict:
    """Chaos phase → recovery phase → invariant report.

    Phase one drives ``requests`` client-verified requests through a
    fresh :class:`~repro.serve.supervisor.SupervisedService` with chaos
    armed; phase two disarms the monkey and drives ``recovery_requests``
    more, proving the tier heals (breakers re-close, workers respawn,
    fallback traffic drains), then :func:`_settle_shards` probes any
    shard whose breaker is still inside its recovery window so the
    final verdict is not a race against the breaker clock.  The
    returned ``serving_chaos/v1`` payload
    carries the acceptance invariants: ``incorrect_responses`` (must be
    0), ``worker_restarts`` (must cover every kill), per-phase
    availability and the final supervisor state.
    """
    spec = spec or ChaosSpec()
    service_config = service_config or ServiceConfig(
        cache_capacity=256, rng_seed=seed
    )
    supervisor_config = supervisor_config or SupervisorConfig(
        sweep_deadline_s=0.2,
        restart_backoff_s=0.01,
        restart_backoff_max_s=0.1,
        breaker=BreakerConfig(failure_threshold=3, recovery_s=0.1),
        fallback_breaker=BreakerConfig(failure_threshold=2, recovery_s=0.2),
    )
    if spec.stall_s <= supervisor_config.sweep_deadline_s:
        raise ValueError("spec.stall_s must exceed the sweep deadline to stall")
    monkey = ChaosMonkey(spec, seed=seed)
    service = SupervisedService(
        service_config, supervisor_config, chaos=monkey, tracer=tracer
    )
    try:
        chaos_report = run_closed_loop(
            service, n=n, total=requests, clients=clients, seed=seed, verify=True
        )
        injected = monkey.stats()
        monkey.disarm()
        recovery_report = run_closed_loop(
            service,
            n=n,
            total=recovery_requests,
            clients=clients,
            seed=seed + 1,
            verify=True,
        )
        settle_probes = _settle_shards(service)
        sup_stats = service.supervisor.stats()
        shard_modes = {k: s["mode"] for k, s in sup_stats["shards"].items()}
        kills = injected["injected"]["crash"] + injected["injected"]["stall"]
        payload = {
            "schema": "serving_chaos/v1",
            "seed": seed,
            "n": n,
            "requests": requests,
            "recovery_requests": recovery_requests,
            "clients": clients,
            "chaos": injected,
            "phases": {
                "chaos": _phase_summary(chaos_report),
                "recovery": _phase_summary(recovery_report),
            },
            "incorrect_responses": chaos_report.incorrect + recovery_report.incorrect,
            "workers_killed": kills,
            "worker_restarts": sup_stats["restarts"],
            "check_failures": sup_stats["check_failures"],
            "kernel_quarantines": sup_stats["quarantines"],
            "failovers": sup_stats["served_fallback"],
            "breaker_trips": sup_stats["breaker_trips"],
            "availability_chaos": round(chaos_report.availability, 6),
            "availability_recovery": round(recovery_report.availability, 6),
            "recovered": all(m == "full" for m in shard_modes.values()),
            "settle_probes": settle_probes,
            "final_shard_modes": shard_modes,
        }
    finally:
        service.close()
    return payload
