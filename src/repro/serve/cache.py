"""Bounded LRU result cache for the serving layer.

Keys are ``(workload, n, index)`` tuples — in practice always
``("unrank", n, index)``, because both deterministic workloads resolve
to an unrank once the service has drawn the index, and shuffles (a fresh
random permutation each time) are never cached.

The cache is thread-safe: a private lock serialises every ``get`` /
``put`` / ``clear`` / ``len``, so concurrent readers during an LRU
eviction can neither hit a ``RuntimeError`` from a mutating
``OrderedDict`` nor lose a hit for an entry that was present throughout
the call, and the hit/miss/eviction counters stay exact under
concurrency.  Contention note: the critical section is a handful of
dict operations (O(1), no allocation beyond the entry itself), several
orders of magnitude shorter than the compiled sweep a miss goes on to
pay — the serving hot path's profile is unchanged with the lock in
place, which is why the cache takes its own lock instead of borrowing
the service's admission lock (the supervised tier's workers and the
admission path may touch it concurrently).  ``OrderedDict`` gives O(1)
recency updates; capacity 0 disables caching entirely (every ``get`` is
a miss, ``put`` is a no-op), which is how the benchmark isolates the
batching speedup from cache effects.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable):
        """The cached value, refreshed to most-recent — or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) a value, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
