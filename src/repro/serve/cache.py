"""Bounded LRU result cache for the serving layer.

Keys are ``(workload, n, index)`` tuples — in practice always
``("unrank", n, index)``, because both deterministic workloads resolve
to an unrank once the service has drawn the index, and shuffles (a fresh
random permutation each time) are never cached.

The cache is **not** thread-safe on its own: the service mutates it only
under its admission lock, which is also what makes the hit/miss counters
exact.  ``OrderedDict`` gives O(1) recency updates; capacity 0 disables
caching entirely (every ``get`` is a miss, ``put`` is a no-op), which is
how the benchmark isolates the batching speedup from cache effects.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable):
        """The cached value, refreshed to most-recent — or ``None``."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) a value, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()
