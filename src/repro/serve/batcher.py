"""Micro-batcher: coalesces concurrent requests into packed sweep lanes.

The packed engines (:mod:`repro.hdl.compile`, :mod:`repro.hdl.vector`)
evaluate one netlist over *lanes* — independent bit positions of packed
words — so a sweep over a full batch costs barely more than a sweep
over one request.  How many lanes one sweep carries is the engine's
*sweep quantum*, reported by its capability record
(:class:`~repro.hdl.engine.EngineCapabilities`): 63 on the compiled
bigint engine, 4096 on the vector engine.  The service sizes
``max_batch`` to that quantum.  The serving hot path holds each
arriving request for at most a small deadline, hoping to share its
sweep with others:

* a batch **fills** — the ``max_batch``-th request closes the batch
  immediately (no deadline wait) and the whole group rides one sweep;
* or the **deadline expires** — whatever has accumulated since the
  group's *first* request flushes, so no request waits longer than the
  deadline however idle the service is.

This module is deliberately a pure, single-threaded data structure: all
methods take the current time as an argument and touch no clocks, locks
or threads.  :class:`~repro.serve.service.PermutationService` supplies
the mutex and the dispatcher thread; the tests drive the batcher with a
hand-rolled clock and get fully deterministic edge cases (empty deadline
flush, single-lane batches, the 64th request spilling into a fresh
group).

Requests batch by *group key* — ``("converter", n)`` for the two
index-driven workloads, ``("shuffle", n)`` for shuffles — because lanes
of one sweep must share a netlist.  Batch ids are assigned when a batch
closes, in closing order, and link responses to their batch trace span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["PendingEntry", "Batch", "MicroBatcher"]


@dataclass
class PendingEntry:
    """One queued request: the work item, its future, and when it arrived.

    ``lanes`` is how many sweep lanes the entry occupies — 1 for the
    classic single-request path, ``count`` for a *wide* entry (one
    socket frame carrying many indices that resolve through one future).
    Wide entries are what let the network front end amortise its
    per-frame decode/submit cost over many lanes.
    """

    request: object
    future: object
    enqueued_at: float
    lanes: int = 1


@dataclass(frozen=True)
class Batch:
    """A closed group of entries destined for one compiled sweep."""

    batch_id: int
    key: Hashable
    entries: tuple[PendingEntry, ...]

    @property
    def lanes(self) -> int:
        return sum(e.lanes for e in self.entries)


@dataclass
class _Group:
    entries: list[PendingEntry] = field(default_factory=list)
    lanes: int = 0  #: occupied sweep lanes (>= len(entries))
    opened_at: float = 0.0  #: enqueue time of the group's first entry


class MicroBatcher:
    """Groups pending entries by key; flushes on batch-full or deadline."""

    def __init__(self, max_batch: int, deadline_s: float):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        self.max_batch = max_batch
        self.deadline_s = deadline_s
        self._groups: dict[Hashable, _Group] = {}
        self._next_batch_id = 0
        self._pending = 0

    @property
    def pending(self) -> int:
        """Lanes currently queued across all groups (the queue depth).

        Counted in *lanes*, not entries: a wide entry holds as many
        queue slots as sweep lanes it will occupy, so admission control
        sheds on real sweep capacity either way.
        """
        return self._pending

    def add(self, key: Hashable, entry: PendingEntry, now: float) -> list[Batch]:
        """Queue an entry; returns whatever batches this closed (0..2).

        A single-lane entry closes at most the group it joins.  A wide
        entry that does not fit the open group's remaining lanes first
        *spills*: the open group closes as-is and the entry opens a
        fresh group — which may itself close immediately if the entry
        alone reaches ``max_batch`` lanes, hence up to two batches.
        Returned batches have already left the queue — the caller (the
        submitting thread) executes them inline, which is what makes the
        batch-full path zero-latency: no handoff to the dispatcher.
        """
        if entry.lanes > self.max_batch:
            raise ValueError(
                f"entry of {entry.lanes} lanes exceeds max_batch {self.max_batch}"
            )
        closed: list[Batch] = []
        group = self._groups.get(key)
        if group is not None and group.lanes + entry.lanes > self.max_batch:
            closed.append(self._close(key, group))
            group = None
        if group is None:
            group = self._groups[key] = _Group(opened_at=now)
        group.entries.append(entry)
        group.lanes += entry.lanes
        self._pending += entry.lanes
        if group.lanes >= self.max_batch:
            closed.append(self._close(key, group))
        return closed

    def next_deadline(self) -> float | None:
        """When the oldest open group must flush (``None`` if empty)."""
        if not self._groups:
            return None
        return min(g.opened_at for g in self._groups.values()) + self.deadline_s

    def take_due(self, now: float) -> list[Batch]:
        """Close and return every group whose deadline has passed."""
        due = [
            key
            for key, g in self._groups.items()
            if g.opened_at + self.deadline_s <= now
        ]
        return [self._close(key, self._groups[key]) for key in due]

    def take_all(self) -> list[Batch]:
        """Close and return every open group (shutdown drain)."""
        return [self._close(key, g) for key, g in list(self._groups.items())]

    def _close(self, key: Hashable, group: _Group) -> Batch:
        del self._groups[key]
        self._pending -= group.lanes
        batch = Batch(
            batch_id=self._next_batch_id, key=key, entries=tuple(group.entries)
        )
        self._next_batch_id += 1
        return batch
