"""Permutation-based compression (paper §I, refs. [1], [2], [13]).

Two §I motivations are implemented:

* **Succinct permutation coding** (Barbay & Navarro, ref. [2]): a
  permutation of n elements stored naively takes ``n·⌈log2 n⌉`` bits; its
  Lehmer rank takes only ``⌈log2 n!⌉`` bits — the information-theoretic
  optimum.  :class:`PermutationCodec` packs/unpacks permutation streams
  at that density (e.g. n = 9: 19 bits vs 36 — the paper's own word-width
  example).  A runs-aware variant exploits "internal regularities": a
  permutation that is a merge of few ascending runs codes in
  ``O(runs · log n)`` bits.
* **Reorder-then-compress** for multispectral-style data (refs. [1],
  [13]): reordering correlated channels by a learned permutation makes a
  simple delta+varint coder dramatically more effective.
  :func:`best_channel_order` finds the permutation greedily and
  :func:`compress_reordered` measures the win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.factorial import element_width, index_width
from repro.core.lehmer import rank, unrank

__all__ = [
    "PermutationCodec",
    "runs_of",
    "run_length_code_size_bits",
    "delta_varint_size_bits",
    "best_channel_order",
    "compress_reordered",
    "ReorderReport",
]


class PermutationCodec:
    """Pack permutations at the information-theoretic density.

    ``encode`` maps a batch of permutations into a single integer bit
    stream of ``⌈log2 n!⌉`` bits each; ``decode`` inverts it.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("n must be at least 1")
        self.n = n
        self.bits_per_permutation = index_width(n)
        self.naive_bits_per_permutation = n * element_width(n)

    @property
    def savings_ratio(self) -> float:
        """naive bits / succinct bits (≥ 1; ≈1.9 for n = 9)."""
        return self.naive_bits_per_permutation / self.bits_per_permutation

    def encode(self, perms: Sequence[Sequence[int]]) -> tuple[int, int]:
        """Returns ``(bitstream, count)``; LSB-first packing."""
        stream = 0
        shift = 0
        count = 0
        for p in perms:
            stream |= rank(list(p)) << shift
            shift += self.bits_per_permutation
            count += 1
        return stream, count

    def decode(self, stream: int, count: int) -> list[tuple[int, ...]]:
        mask = (1 << self.bits_per_permutation) - 1
        out = []
        for _ in range(count):
            out.append(unrank(stream & mask, self.n))
            stream >>= self.bits_per_permutation
        return out


def runs_of(perm: Sequence[int]) -> list[tuple[int, ...]]:
    """Maximal ascending runs — the regularity measure of ref. [2]."""
    p = list(perm)
    if not p:
        return []
    runs = [[p[0]]]
    for prev, cur in zip(p, p[1:]):
        if cur > prev:
            runs[-1].append(cur)
        else:
            runs.append([cur])
    return [tuple(r) for r in runs]


def run_length_code_size_bits(perm: Sequence[int]) -> int:
    """Size of a runs-based encoding: ``Σ (1 + ⌈log2 n⌉)`` per element of
    a merge tree over the runs — upper-bounded here by the standard
    ``n·(⌈log2 ρ⌉ + 1) + ρ·⌈log2 n⌉`` with ρ runs.

    For ρ = 1 (the identity) this is ~n bits instead of n·log n; for a
    random permutation (ρ ≈ n/2) it degrades gracefully past the plain
    Lehmer bound, quantifying when regularity-aware coding pays.
    """
    p = list(perm)
    n = len(p)
    if n == 0:
        return 0
    rho = len(runs_of(p))
    ew = element_width(max(n, 2))
    merge_bits = max(1, (rho - 1).bit_length() + 1)
    return n * merge_bits + rho * ew


def delta_varint_size_bits(values: np.ndarray) -> int:
    """Bits a delta + Elias-gamma coder needs for a 1-D series.

    Deltas are zigzag-mapped to non-negatives; gamma codes ``z`` in
    ``2·⌊log2(z+1)⌋ + 1`` bits, so small residues cost few bits and the
    size is sensitive to how well the ordering decorrelates the data.
    """
    v = np.asarray(values, dtype=np.int64).ravel()
    if v.size == 0:
        return 0
    deltas = np.diff(v, prepend=v[:1] * 0)
    zigzag = np.abs(deltas) * 2 - (deltas < 0)
    return int(sum(2 * (int(z) + 1).bit_length() - 1 for z in zigzag))


@dataclass(frozen=True)
class ReorderReport:
    """Outcome of reorder-then-compress on a channel block."""

    channels: int
    order: tuple[int, ...]
    original_bits: int
    reordered_bits: int

    @property
    def improvement(self) -> float:
        """original / reordered (> 1 when reordering helps)."""
        return self.original_bits / max(1, self.reordered_bits)


def best_channel_order(block: np.ndarray) -> tuple[int, ...]:
    """Greedy nearest-neighbour channel ordering (refs. [1], [13]).

    ``block`` is ``(channels, samples)``; channels are chained so each
    next channel is the unvisited one with the smallest mean absolute
    difference to the current — the standard band-ordering heuristic for
    multispectral images.
    """
    data = np.asarray(block, dtype=np.int64)
    c = data.shape[0]
    if c == 0:
        raise ValueError("need at least one channel")
    remaining = set(range(1, c))
    order = [0]
    while remaining:
        cur = data[order[-1]]
        nxt = min(remaining, key=lambda j: int(np.abs(data[j] - cur).sum()))
        order.append(nxt)
        remaining.remove(nxt)
    return tuple(order)


def compress_reordered(block: np.ndarray, order: Sequence[int] | None = None) -> ReorderReport:
    """Measure delta-coder size before/after channel reordering.

    Deltas are taken *across channels* (sample-wise), which is where the
    ordering matters; the permutation used is recorded so a decoder can
    invert it (its index costs ``⌈log2 c!⌉`` extra bits, included).
    """
    data = np.asarray(block, dtype=np.int64)
    if data.ndim != 2:
        raise ValueError("block must be (channels, samples)")
    c = data.shape[0]
    perm = tuple(order) if order is not None else best_channel_order(data)
    if sorted(perm) != list(range(c)):
        raise ValueError("order must permute the channels")

    def cross_channel_bits(d: np.ndarray) -> int:
        bits = delta_varint_size_bits(d[0])
        for prev, cur in zip(d, d[1:]):
            bits += delta_varint_size_bits(cur - prev)
        return bits

    original = cross_channel_bits(data)
    reordered = cross_channel_bits(data[list(perm)]) + index_width(c)
    return ReorderReport(
        channels=c, order=perm, original_bits=original, reordered_bits=reordered
    )
