"""Permutation diffusion layers for ciphers (paper §I, refs. [7], [17], [18]).

"Permutations are used to create diffusion, where information in the
plaintext is spread out across the ciphertext … there are six permutations
in DES, two in Twofish and two in Serpent."  This module treats a
bit-permutation layer as an *index*: the layer is defined by a number in
``0..w!−1`` and expanded by the converter, which is how a hardware design
would derive per-round or key-dependent permutations on the fly.

:func:`avalanche_profile` measures the classic diffusion statistic — the
distribution of output Hamming distance under single-bit input flips —
for a substitution-permutation network built from these layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial
from repro.core.permutation import Permutation

__all__ = ["PermutationDiffusionLayer", "SPNetwork", "avalanche_profile"]


class PermutationDiffusionLayer:
    """A ``width``-bit wire-crossing layer addressed by its index.

    Bit ``i`` of the input drives bit ``perm[i]`` of the output (the
    scatter convention used in cipher specifications).
    """

    def __init__(self, width: int, index: int):
        self.width = width
        self.index = index
        converter = IndexToPermutationConverter(width)
        self.permutation = Permutation(converter.convert(index))

    @classmethod
    def from_key(cls, width: int, key: int) -> "PermutationDiffusionLayer":
        """Key-dependent layer: reduce the key modulo ``width!``."""
        return cls(width, key % factorial(width))

    def forward(self, block: int) -> int:
        """Apply the bit permutation to a ``width``-bit block."""
        if block < 0 or block >> self.width:
            raise ValueError(f"block does not fit {self.width} bits")
        out = 0
        for i, target in enumerate(self.permutation):
            if (block >> i) & 1:
                out |= 1 << target
        return out

    def inverse(self, block: int) -> int:
        """Undo :meth:`forward`."""
        if block < 0 or block >> self.width:
            raise ValueError(f"block does not fit {self.width} bits")
        out = 0
        for i, target in enumerate(self.permutation):
            if (block >> target) & 1:
                out |= 1 << i
        return out


def _default_sbox() -> tuple[int, ...]:
    """The PRESENT cipher's 4-bit S-box — a published, bijective box."""
    return (0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2)


class SPNetwork:
    """A toy substitution-permutation network over ``width``-bit blocks.

    Each round: XOR a round key, apply the 4-bit S-box nibble-wise, then
    the permutation diffusion layer.  ``width`` must be a multiple of 4.
    Structurally a miniature PRESENT/Serpent; adequate to *measure*
    diffusion (it is not a secure cipher and says so).
    """

    def __init__(
        self,
        width: int,
        layer_indices: Sequence[int],
        round_keys: Sequence[int] | None = None,
        sbox: Sequence[int] | None = None,
    ):
        if width % 4:
            raise ValueError("width must be a multiple of 4")
        self.width = width
        self.layers = [PermutationDiffusionLayer(width, i) for i in layer_indices]
        self.rounds = len(self.layers)
        if round_keys is None:
            round_keys = [(0xA5A5A5A5A5A5A5A5 >> r) & ((1 << width) - 1) for r in range(self.rounds)]
        if len(round_keys) != self.rounds:
            raise ValueError("one round key per layer required")
        self.round_keys = [int(k) & ((1 << width) - 1) for k in round_keys]
        self.sbox = tuple(sbox) if sbox is not None else _default_sbox()
        if sorted(self.sbox) != list(range(16)):
            raise ValueError("sbox must be a bijection on 0..15")
        self._inv_sbox = tuple(self.sbox.index(v) for v in range(16))

    def _sub(self, block: int, box: tuple[int, ...]) -> int:
        out = 0
        for nib in range(self.width // 4):
            out |= box[(block >> (4 * nib)) & 0xF] << (4 * nib)
        return out

    def encrypt(self, block: int) -> int:
        for key, layer in zip(self.round_keys, self.layers):
            block ^= key
            block = self._sub(block, self.sbox)
            block = layer.forward(block)
        return block

    def decrypt(self, block: int) -> int:
        for key, layer in zip(reversed(self.round_keys), reversed(self.layers)):
            block = layer.inverse(block)
            block = self._sub(block, self._inv_sbox)
            block ^= key
        return block


@dataclass(frozen=True)
class AvalancheReport:
    """Diffusion statistics under single-bit input flips."""

    width: int
    samples: int
    mean_flips: float  #: average output bits flipped (ideal: width/2)
    min_flips: int
    max_flips: int
    histogram: tuple[int, ...]

    @property
    def avalanche_ratio(self) -> float:
        """mean flips / (width/2); 1.0 is ideal diffusion."""
        return self.mean_flips / (self.width / 2)


def avalanche_profile(
    cipher: SPNetwork, samples: int = 256, seed: int = 0
) -> AvalancheReport:
    """Flip each input bit of random blocks; histogram output flips."""
    rng = np.random.default_rng(seed)
    width = cipher.width
    hist = np.zeros(width + 1, dtype=np.int64)
    total = 0
    count = 0
    lo, hi = width, 0
    for _ in range(samples):
        block = int(rng.integers(0, 1 << width, dtype=np.uint64)) & ((1 << width) - 1)
        base = cipher.encrypt(block)
        for bit in range(width):
            flipped = cipher.encrypt(block ^ (1 << bit))
            d = bin(base ^ flipped).count("1")
            hist[d] += 1
            total += d
            count += 1
            lo, hi = min(lo, d), max(hi, d)
    return AvalancheReport(
        width=width,
        samples=samples,
        mean_flips=total / count,
        min_flips=lo,
        max_flips=hi,
        histogram=tuple(int(x) for x in hist),
    )
