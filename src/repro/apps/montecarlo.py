"""Monte-Carlo harnesses over random permutations (paper §III).

Two workloads from the paper's discussion:

* the *derangement* estimate of e, here parallelised with the leap-frog
  LFSR substreams of :meth:`repro.rng.lfsr.LFSRBase.spawn_substreams` —
  the harness shards the sample budget over independent workers whose
  generators provably never overlap, then reduces;
* the *sorting assessment* study (ref. [14], Oommen & Ng): "compared to
  other sorting algorithms, the Insertion Sort is known to be efficient
  when the list is almost sorted, and inefficient when the list is almost
  unsorted" — quantified by counting Insertion-Sort element moves over
  permutation ensembles of controlled sortedness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.derangements import DerangementResult, derangement_mask
from repro.core.knuth import KnuthShuffleCircuit

__all__ = [
    "parallel_derangement_estimate",
    "insertion_sort_cost",
    "SortednessPoint",
    "sortedness_study",
]


def parallel_derangement_estimate(
    n: int,
    samples: int = 1 << 20,
    workers: int = 4,
    m: int = 31,
) -> DerangementResult:
    """Shard the §III-C experiment across ``workers`` disjoint substreams.

    Worker ``w`` runs a Knuth-shuffle circuit whose stage LFSRs have been
    jumped ``w·block`` draws ahead, so the union of all workers' draws is
    a contiguous, non-overlapping slice of each stage's sequence — the
    deterministic parallel decomposition used on real clusters.  The
    result is reduced by summing derangement counts and is *identical* to
    the sequential run over the same total sample count.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    block = -(-samples // workers)
    total = 0
    done = 0
    for w in range(workers):
        chunk = min(block, samples - done)
        if chunk <= 0:
            break
        circuit = KnuthShuffleCircuit(n, m=m)
        for gen in circuit.generators:
            gen.lfsr.jump(w * block)
        perms = circuit.sample(chunk)
        total += int(derangement_mask(perms).sum())
        done += chunk
    return DerangementResult(n=n, samples=done, derangements=total)


def insertion_sort_cost(perm: Sequence[int]) -> int:
    """Number of element moves Insertion Sort performs on ``perm``.

    Equals the inversion count — 0 for sorted input, ``n(n−1)/2`` for the
    reversal.
    """
    arr = list(perm)
    moves = 0
    for i in range(1, len(arr)):
        key = arr[i]
        j = i - 1
        while j >= 0 and arr[j] > key:
            arr[j + 1] = arr[j]
            moves += 1
            j -= 1
        arr[j + 1] = key
    return moves


def _partial_shuffle(n: int, swaps: int, rng: np.random.Generator) -> np.ndarray:
    """Identity perturbed by ``swaps`` random transpositions."""
    perm = np.arange(n)
    for _ in range(swaps):
        i, j = rng.integers(0, n, size=2)
        perm[i], perm[j] = perm[j], perm[i]
    return perm


@dataclass(frozen=True)
class SortednessPoint:
    """Mean Insertion-Sort cost for one sortedness level."""

    n: int
    swaps: int  #: random transpositions applied to the identity
    trials: int
    mean_moves: float
    mean_displacement: float

    @property
    def normalised_cost(self) -> float:
        """Cost relative to the worst case n(n−1)/2."""
        return self.mean_moves / (self.n * (self.n - 1) / 2)


def sortedness_study(
    n: int = 64,
    swap_levels: Sequence[int] = (0, 1, 2, 4, 8, 16, 32, 64, 128),
    trials: int = 50,
    seed: int = 0,
) -> list[SortednessPoint]:
    """Insertion-Sort cost vs distance from sortedness (ref. [14]).

    Almost-sorted ensembles come from lightly-perturbed identities; the
    fully random end uses the Knuth-shuffle circuit.  The cost curve rises
    from ~0 to ~the random-permutation expectation n(n−1)/4.
    """
    rng = np.random.default_rng(seed)
    out = []
    shuffle = KnuthShuffleCircuit(n, m=31)
    for swaps in swap_levels:
        total_moves = 0
        total_disp = 0
        for _ in range(trials):
            if swaps < 0:
                raise ValueError("swap level must be non-negative")
            perm = _partial_shuffle(n, swaps, rng)
            total_moves += insertion_sort_cost(perm)
            total_disp += int(np.abs(perm - np.arange(n)).sum())
        out.append(
            SortednessPoint(
                n=n,
                swaps=swaps,
                trials=trials,
                mean_moves=total_moves / trials,
                mean_displacement=total_disp / trials,
            )
        )
    # fully random reference point from the hardware shuffle model
    perms = shuffle.sample(trials)
    moves = [insertion_sort_cost(row) for row in perms]
    disp = np.abs(perms - np.arange(n)).sum(axis=1)
    out.append(
        SortednessPoint(
            n=n,
            swaps=n * n,  # sentinel level: fully shuffled via the circuit
            trials=trials,
            mean_moves=float(np.mean(moves)),
            mean_displacement=float(disp.mean()),
        )
    )
    return out
