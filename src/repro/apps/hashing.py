"""Unique-permutation hashing for shared-memory parallel machines.

The paper's §I motivation (ref. [6], Dolev, Lahiani & Haviv, *Unique
permutation hashing*): give every key a probe sequence that is a
*permutation* of the table, drawn uniformly from all n! permutations.
Such probing "yields the minimal possible contention, as it probes each
location with the same probability regardless of which locations are
currently occupied" — unlike linear probing, whose clusters make occupied
regions ever more likely to be probed.

The hardware converter is what makes this practical: the key hashes to an
index in ``0..n!−1`` and the converter expands it to the probe permutation
in one clock.  Here the same pipeline is modelled in software:

    key ──hash──▶ index ──converter──▶ probe permutation

and :func:`simulate_contention` fills a table to a target load factor with
both strategies, counting probes — reproducing the qualitative claim
(permutation probing ≈ uniform probing; linear probing degrades
super-linearly as clustering sets in).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial

__all__ = [
    "UniquePermutationHasher",
    "LinearProbingHasher",
    "ContentionResult",
    "simulate_contention",
]


def _mix64(key: int) -> int:
    """SplitMix64 finaliser — a solid integer hash for key → index."""
    z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class UniquePermutationHasher:
    """Probe sequences that are uniform random permutations of the table.

    ``probe_sequence(key)`` is the full permutation; distinct keys get
    (pseudo-)independent permutations via a 64-bit mix of the key reduced
    modulo n! (for n ≤ 20 the reduction is unbiased to < 2⁻⁴⁴).
    """

    def __init__(self, table_size: int):
        if table_size < 1:
            raise ValueError("table size must be positive")
        self.n = table_size
        self.converter = IndexToPermutationConverter(table_size)
        self._limit = factorial(table_size)

    def index_for_key(self, key: int) -> int:
        h = _mix64(key)
        if self._limit.bit_length() > 64:
            # widen by chaining two mixes for very large tables
            h = (h << 64) | _mix64(h)
        return h % self._limit

    def probe_sequence(self, key: int) -> tuple[int, ...]:
        return self.converter.convert(self.index_for_key(key))

    def insert(self, occupied: np.ndarray, key: int) -> int:
        """Probe until a free slot; returns the probe count (≥ 1)."""
        seq = self.probe_sequence(key)
        for probes, slot in enumerate(seq, start=1):
            if not occupied[slot]:
                occupied[slot] = True
                return probes
        raise RuntimeError("table full")


class LinearProbingHasher:
    """Classic linear probing baseline: start at hash(key) mod n, walk +1."""

    def __init__(self, table_size: int):
        if table_size < 1:
            raise ValueError("table size must be positive")
        self.n = table_size

    def probe_sequence(self, key: int) -> tuple[int, ...]:
        start = _mix64(key) % self.n
        return tuple((start + i) % self.n for i in range(self.n))

    def insert(self, occupied: np.ndarray, key: int) -> int:
        start = _mix64(key) % self.n
        for probes in range(1, self.n + 1):
            slot = (start + probes - 1) % self.n
            if not occupied[slot]:
                occupied[slot] = True
                return probes
        raise RuntimeError("table full")


@dataclass(frozen=True)
class ContentionResult:
    """Probe statistics of one table fill."""

    strategy: str
    table_size: int
    inserted: int
    total_probes: int
    max_probes: int
    probe_histogram: tuple[int, ...]  #: histogram of per-insert probe counts

    @property
    def mean_probes(self) -> float:
        return self.total_probes / self.inserted


def simulate_contention(
    table_size: int,
    load_factor: float = 0.9,
    trials: int = 20,
    seed: int = 0,
) -> dict[str, ContentionResult]:
    """Fill tables to ``load_factor`` with both strategies; aggregate probes.

    Keys are drawn fresh per trial; results are summed over trials so the
    histograms are smooth.  Returns ``{"permutation": …, "linear": …}``.
    """
    if not (0.0 < load_factor <= 1.0):
        raise ValueError("load factor must be in (0, 1]")
    rng = np.random.default_rng(seed)
    n_insert = max(1, int(round(table_size * load_factor)))
    out: dict[str, ContentionResult] = {}
    for name, hasher in (
        ("permutation", UniquePermutationHasher(table_size)),
        ("linear", LinearProbingHasher(table_size)),
    ):
        total = 0
        worst = 0
        hist = np.zeros(table_size + 1, dtype=np.int64)
        for _ in range(trials):
            occupied = np.zeros(table_size, dtype=bool)
            keys = rng.integers(0, 2**63 - 1, size=n_insert)
            for key in keys:
                probes = hasher.insert(occupied, int(key))
                total += probes
                worst = max(worst, probes)
                hist[probes] += 1
        out[name] = ContentionResult(
            strategy=name,
            table_size=table_size,
            inserted=n_insert * trials,
            total_probes=total,
            max_probes=worst,
            probe_histogram=tuple(int(x) for x in hist),
        )
    return out
