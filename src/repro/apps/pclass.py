"""P-equivalence classification of Boolean functions (paper §I, ref. [5]).

"Two Boolean functions are P-equivalent if they differ only by a
permutation of variables.  In [5], a breadth-first search technique is
shown for computing the P-representative of a given function … Such a
classification is useful in a lookup table implementation of Boolean
functions.  This advance was made in the software implementation, but a
faster hardware implementation requires hardware generation of
permutations."

This module is that workload: the **P-representative** of an ``n``-input
function is the lexicographically smallest truth table among the ``n!``
variable relabelings, found by streaming every permutation from the
converter enumeration.  :func:`classify_all` partitions the whole 2^(2^n)
function space into P-classes — the class counts for small n are known
closed forms (OEIS A000612-adjacent; asserted in the tests via Burnside's
lemma, also implemented here as an independent check).
"""

from __future__ import annotations

from math import factorial
from repro.apps.bdd import permute_truth_table
from repro.core.permutation import Permutation
from repro.core.sequences import all_permutations

__all__ = [
    "p_representative",
    "p_class",
    "are_p_equivalent",
    "classify_all",
    "count_p_classes_burnside",
]


def p_representative(tt: int, n_vars: int) -> int:
    """Smallest truth table over all n! variable permutations.

    The canonical form of ref. [5]: two functions are P-equivalent iff
    their representatives coincide.
    """
    best = None
    for order in all_permutations(n_vars):
        candidate = permute_truth_table(tt, n_vars, order)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return best


def p_class(tt: int, n_vars: int) -> frozenset[int]:
    """The full orbit of ``tt`` under variable permutation."""
    return frozenset(
        permute_truth_table(tt, n_vars, order) for order in all_permutations(n_vars)
    )


def are_p_equivalent(ta: int, tb: int, n_vars: int) -> bool:
    """True when the two functions differ only by a variable permutation."""
    return p_representative(ta, n_vars) == p_representative(tb, n_vars)


def classify_all(n_vars: int) -> dict[int, list[int]]:
    """Partition all 2^(2^n) functions into P-classes.

    Returns representative → sorted members.  Feasible for n ≤ 3
    (2 variables: 16 functions; 3 variables: 256; 4 would be 65,536
    functions × 24 permutations — still minutes, use with care).
    """
    if n_vars < 1:
        raise ValueError("n_vars must be at least 1")
    total = 1 << (1 << n_vars)
    orders = list(all_permutations(n_vars))
    classes: dict[int, list[int]] = {}
    seen: set[int] = set()
    for tt in range(total):
        if tt in seen:
            continue
        orbit = {permute_truth_table(tt, n_vars, order) for order in orders}
        rep = min(orbit)
        classes[rep] = sorted(orbit)
        seen.update(orbit)
    return classes


def _cycle_index_fixed_functions(perm: Permutation, n_vars: int) -> int:
    """Number of n-var functions fixed by a variable permutation.

    A function is fixed iff it is constant on the orbits the permutation
    induces on the 2^n assignments: the count is ``2^(#orbits)``.
    """
    n_assignments = 1 << n_vars
    seen = [False] * n_assignments
    orbits = 0
    for start in range(n_assignments):
        if seen[start]:
            continue
        orbits += 1
        a = start
        while not seen[a]:
            seen[a] = True
            b = 0
            for j in range(n_vars):
                if (a >> perm[j]) & 1:
                    b |= 1 << j
            a = b
    return 1 << orbits


def count_p_classes_burnside(n_vars: int) -> int:
    """Number of P-classes via Burnside's lemma — an independent check.

    ``#classes = (1/n!) Σ_π #functions fixed by π`` over all variable
    permutations π.  Must (and does, in tests) equal
    ``len(classify_all(n_vars))``.
    """
    total = 0
    for order in all_permutations(n_vars):
        total += _cycle_index_fixed_functions(Permutation(order), n_vars)
    return total // factorial(n_vars)
