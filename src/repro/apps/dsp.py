"""Data-stream reordering for pipelined FFT engines (paper §I, ref. [15]).

Parsons' observation (IEEE SPL 2009): the data permutations inside
high-bandwidth pipelined FFTs — bit-reversal, stride (corner-turn) and
their compositions — are elements of the symmetric group, so a generic
permutation engine addressed by an *index* can realise any of them.  This
module computes those classical permutations, exhibits them as converter
indices, and provides a cycle-accurate double-buffered stream reorder
engine such as an FPGA DSP pipeline would instantiate.

The FFT connection is verified end-to-end: a radix-2 decimation-in-time
FFT computed over bit-reversal-permuted input matches ``numpy.fft.fft``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.lehmer import rank
from repro.core.permutation import Permutation

__all__ = [
    "bit_reversal_permutation",
    "stride_permutation",
    "permutation_index",
    "StreamReorderEngine",
    "fft_with_explicit_reorder",
]


def bit_reversal_permutation(n: int) -> Permutation:
    """The bit-reversal permutation on ``n = 2^k`` points."""
    if n < 1 or n & (n - 1):
        raise ValueError("n must be a power of two")
    k = n.bit_length() - 1
    seq = [int(format(i, f"0{k}b")[::-1], 2) if k else 0 for i in range(n)]
    return Permutation(seq)


def stride_permutation(n: int, stride: int) -> Permutation:
    """The stride-s (corner turn) permutation: ``i ↦ (i mod s)·(n/s) + i div s``.

    ``stride`` must divide ``n``.  This is the L(n, s) operator of FFT
    factorizations (matrix transpose of an (s × n/s) block).
    """
    if n < 1 or stride < 1 or n % stride:
        raise ValueError("stride must divide n")
    cols = n // stride
    return Permutation((i % stride) * cols + i // stride for i in range(n))


def permutation_index(perm: Permutation) -> int:
    """The converter index that reproduces ``perm`` — how a hardware
    engine would *address* this reorder pattern."""
    return rank(perm.seq)


class StreamReorderEngine:
    """Double-buffered block reorder: one output sample per clock.

    Models the standard FPGA structure: while buffer A plays out the
    previous block in permuted order, buffer B records the incoming
    block; buffers swap every ``n`` clocks.  Latency is therefore one
    full block (``n`` cycles), throughput one sample per cycle —
    the stream analogue of the converter pipeline's 1/clock rate.
    """

    def __init__(self, permutation: Permutation):
        self.permutation = permutation
        self.n = permutation.n

    @property
    def latency(self) -> int:
        return self.n

    def process(self, stream: Sequence[complex] | np.ndarray) -> np.ndarray:
        """Reorder a stream block-by-block; length must be a multiple of n.

        Output sample ``b·n + i`` is input sample ``b·n + perm[i]``.
        """
        data = np.asarray(stream)
        if data.size % self.n:
            raise ValueError(f"stream length must be a multiple of {self.n}")
        blocks = data.reshape(-1, self.n)
        return blocks[:, list(self.permutation)].reshape(-1)

    def simulate_cycles(self, stream: Sequence[complex]) -> list[tuple[int, complex | None]]:
        """Cycle log ``(cycle, output)``: None during the first-block fill."""
        data = list(stream)
        if len(data) % self.n:
            raise ValueError(f"stream length must be a multiple of {self.n}")
        out: list[tuple[int, complex | None]] = []
        buffers: list[list[complex]] = [[None] * self.n, [None] * self.n]
        for cycle, sample in enumerate(data + [0] * self.n):
            block, phase = divmod(cycle, self.n)
            write_buf = buffers[block % 2]
            read_buf = buffers[(block + 1) % 2]
            emitted = None
            if block >= 1:
                emitted = read_buf[self.permutation[phase]]
            if cycle < len(data):
                write_buf[phase] = sample
            out.append((cycle, emitted))
        return out[: len(data) + self.n]


def fft_with_explicit_reorder(x: Sequence[complex] | np.ndarray) -> np.ndarray:
    """Radix-2 DIT FFT with the bit-reversal reorder made explicit.

    The input passes through a :class:`StreamReorderEngine` configured
    with the bit-reversal permutation, then through iterative butterfly
    stages — the textbook pipelined-FFT structure.  Matches
    ``numpy.fft.fft`` to floating-point tolerance (asserted in tests).
    """
    a = np.asarray(x, dtype=np.complex128).copy()
    n = a.size
    if n < 1 or n & (n - 1):
        raise ValueError("length must be a power of two")
    engine = StreamReorderEngine(bit_reversal_permutation(n))
    a = engine.process(a)
    size = 2
    while size <= n:
        half = size // 2
        tw = np.exp(-2j * np.pi * np.arange(half) / size)
        a = a.reshape(-1, size)
        even = a[:, :half].copy()
        odd = a[:, half:] * tw
        a[:, :half] = even + odd
        a[:, half:] = even - odd
        a = a.reshape(-1)
        size *= 2
    return a
