"""Reduced ordered binary decision diagrams and variable-order search.

The paper's §I motivation (refs. [3] Bryant, [5] Debnath & Sasao): BDD size
depends dramatically on variable order — "the BDD of the Achilles-heel
function has a polynomial number of nodes for the optimum ordering and an
exponential number for the worst case" — and finding good orders "involves
the generation of typically many permutations".  That is exactly the
converter's job: enumerate variable orders as indices and score each.

The package implements a small ROBDD with a unique table (hash consing),
construction from truth tables under an arbitrary variable order, Boolean
combinators, and the exhaustive order search driven by
:func:`repro.core.sequences.all_permutations`.

Truth tables are Python integers: bit ``a`` holds ``f(a)`` where variable
``i`` is bit ``i`` of the assignment ``a`` (variable 0 = LSB).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.sequences import all_permutations

__all__ = [
    "BDD",
    "truth_table_from_function",
    "permute_truth_table",
    "bdd_size_under_order",
    "best_variable_order",
    "achilles_heel",
]


def truth_table_from_function(f: Callable[[tuple[int, ...]], int], n_vars: int) -> int:
    """Tabulate ``f`` over all 2^n assignments into a bitmask."""
    tt = 0
    for a in range(1 << n_vars):
        bits = tuple((a >> i) & 1 for i in range(n_vars))
        if f(bits):
            tt |= 1 << a
    return tt


def permute_truth_table(tt: int, n_vars: int, order: Sequence[int]) -> int:
    """Relabel variables: new variable ``j`` is old variable ``order[j]``.

    The returned table ``g`` satisfies ``g(b) = f(a)`` with
    ``a[order[j]] = b[j]``.
    """
    if sorted(order) != list(range(n_vars)):
        raise ValueError("order must permute 0..n_vars-1")
    out = 0
    for b in range(1 << n_vars):
        a = 0
        for j in range(n_vars):
            if (b >> j) & 1:
                a |= 1 << order[j]
        if (tt >> a) & 1:
            out |= 1 << b
    return out


class BDD:
    """A reduced ordered BDD over variables ``0..n_vars−1`` (0 at the top).

    Nodes are hash-consed triples ``(var, lo, hi)``; ids 0 and 1 are the
    terminals.  Reduction (no redundant tests, no duplicate nodes) is
    enforced at creation, so :attr:`size` is canonical for the order.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, n_vars: int):
        if n_vars < 0:
            raise ValueError("n_vars must be non-negative")
        self.n_vars = n_vars
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple, int] = {}

    # -- node management ------------------------------------------------ #

    def node(self, var: int, lo: int, hi: int) -> int:
        """Hash-consed, reduced node constructor."""
        if lo == hi:
            return lo
        key = (var, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        self._nodes.append(key)
        nid = len(self._nodes) - 1
        self._unique[key] = nid
        return nid

    def var_of(self, nid: int) -> int:
        return self._nodes[nid][0]

    def cofactors(self, nid: int) -> tuple[int, int]:
        _, lo, hi = self._nodes[nid]
        return lo, hi

    @property
    def total_nodes(self) -> int:
        """All internal nodes ever created in this manager."""
        return len(self._nodes) - 2

    def size(self, root: int) -> int:
        """Internal nodes reachable from ``root`` (the reported BDD size)."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            nid = stack.pop()
            if nid <= 1 or nid in seen:
                continue
            seen.add(nid)
            _, lo, hi = self._nodes[nid]
            stack.extend((lo, hi))
        return len(seen)

    # -- construction ----------------------------------------------------- #

    def variable(self, i: int) -> int:
        """The single-variable function ``x_i``."""
        if not (0 <= i < self.n_vars):
            raise ValueError(f"variable {i} outside 0..{self.n_vars - 1}")
        return self.node(i, self.FALSE, self.TRUE)

    def from_truth_table(self, tt: int) -> int:
        """Build the ROBDD of a truth table under the natural order."""
        n = self.n_vars
        if tt < 0 or tt >> (1 << n):
            raise ValueError(f"truth table does not fit {n} variables")
        cache: dict[tuple[int, int], int] = {}

        def build(level: int, sub: int) -> int:
            # sub is a 2^(n-level)-entry table over variables level..n−1;
            # assignment bit j of sub's index is variable level+j.
            if level == n:
                return self.TRUE if sub else self.FALSE
            key = (level, sub)
            hit = cache.get(key)
            if hit is not None:
                return hit
            half = 1 << (n - level - 1)
            mask = (1 << half) - 1
            lo = build(level + 1, sub & mask)
            hi = build(level + 1, (sub >> half) & mask)
            out = self.node(level, lo, hi)
            cache[key] = out
            return out

        # reorder assignment bits so variable `level` is the top split:
        # the natural encoding has variable 0 as the LSB, which is what
        # `build` consumes when it splits on the high half for var=level…
        # Splitting the index MSB-first tests variable n−1 first, so we
        # bit-reverse assignments once to put variable 0 on top.
        reversed_tt = 0
        for a in range(1 << n):
            if (tt >> a) & 1:
                rev = int(format(a, f"0{n}b")[::-1], 2) if n else 0
                reversed_tt |= 1 << rev
        return build(0, reversed_tt)

    # -- boolean combinators ----------------------------------------------- #

    def apply(self, op: str, u: int, v: int) -> int:
        """Binary combinator over BDD roots: 'and' | 'or' | 'xor'."""
        ops = {
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: a ^ b,
        }
        if op not in ops:
            raise ValueError(f"unknown op {op!r}")
        fn = ops[op]

        def rec(a: int, b: int) -> int:
            if a <= 1 and b <= 1:
                return fn(a, b)
            key = (op, a, b)
            hit = self._apply_cache.get(key)
            if hit is not None:
                return hit
            va = self.var_of(a) if a > 1 else self.n_vars
            vb = self.var_of(b) if b > 1 else self.n_vars
            top = min(va, vb)
            a0, a1 = self.cofactors(a) if va == top else (a, a)
            b0, b1 = self.cofactors(b) if vb == top else (b, b)
            out = self.node(top, rec(a0, b0), rec(a1, b1))
            self._apply_cache[key] = out
            return out

        return rec(u, v)

    def negate(self, u: int) -> int:
        cache: dict[int, int] = {}

        def rec(a: int) -> int:
            if a <= 1:
                return 1 - a
            hit = cache.get(a)
            if hit is not None:
                return hit
            var, lo, hi = self._nodes[a]
            out = self.node(var, rec(lo), rec(hi))
            cache[a] = out
            return out

        return rec(u)

    def evaluate(self, root: int, assignment: Sequence[int]) -> int:
        """Evaluate the function at a 0/1 assignment (index = variable)."""
        nid = root
        while nid > 1:
            var, lo, hi = self._nodes[nid]
            nid = hi if assignment[var] else lo
        return nid


def bdd_size_under_order(tt: int, n_vars: int, order: Sequence[int]) -> int:
    """ROBDD node count of truth table ``tt`` under a variable order.

    ``order[j]`` names the original variable placed at level ``j``.
    """
    mgr = BDD(n_vars)
    root = mgr.from_truth_table(permute_truth_table(tt, n_vars, order))
    return mgr.size(root)


def best_variable_order(tt: int, n_vars: int) -> tuple[tuple[int, ...], int, tuple[int, ...], int]:
    """Exhaustive order search via the index→permutation enumeration.

    Returns ``(best_order, best_size, worst_order, worst_size)``.  This is
    the workload the paper cites: "determining the optimum ordering
    involves the generation of typically many permutations, testing how
    many nodes are required for each" — all n! orders stream from
    :func:`~repro.core.sequences.all_permutations`.
    """
    best: tuple[int, ...] | None = None
    worst: tuple[int, ...] | None = None
    best_size = 1 << 62
    worst_size = -1
    for order in all_permutations(n_vars):
        size = bdd_size_under_order(tt, n_vars, order)
        if size < best_size:
            best, best_size = order, size
        if size > worst_size:
            worst, worst_size = order, size
    assert best is not None and worst is not None
    return best, best_size, worst, worst_size


def sift_order(
    tt: int, n_vars: int, passes: int = 2, initial: Sequence[int] | None = None
) -> tuple[tuple[int, ...], int]:
    """Rudell-style sifting: a heuristic alternative to exhaustive search.

    Each round moves one variable through every position of the current
    order, keeping the placement that minimises the BDD size; variables
    are processed repeatedly for ``passes`` rounds.  Cost is
    O(passes · n² rebuilds) instead of the exhaustive n! — the practical
    regime when the converter-driven full search (the paper's workload)
    is too large.  Returns ``(order, size)``; never worse than the
    starting order.
    """
    if initial is not None and sorted(initial) != list(range(n_vars)):
        raise ValueError("initial order must permute the variables")
    order = list(initial) if initial is not None else list(range(n_vars))
    best_size = bdd_size_under_order(tt, n_vars, order)
    for _ in range(passes):
        improved = False
        for var in list(order):
            base = [v for v in order if v != var]
            candidates = []
            for pos in range(n_vars):
                cand = base[:pos] + [var] + base[pos:]
                candidates.append((bdd_size_under_order(tt, n_vars, cand), cand))
            size, cand = min(candidates, key=lambda x: (x[0], x[1]))
            if size < best_size:
                best_size, order, improved = size, cand, True
            elif size == best_size:
                order = cand
        if not improved:
            break
    return tuple(order), best_size


def achilles_heel(k: int) -> tuple[int, int]:
    """The Achilles-heel function ``x₀x₁ ∨ x₂x₃ ∨ … ∨ x₂ₖ₋₂x₂ₖ₋₁``.

    Returns ``(truth_table, n_vars)`` with ``n_vars = 2k``.  Under the
    natural (paired) order its BDD has O(k) nodes; under the order that
    lists all first factors before all second factors it has Θ(2^k).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = 2 * k

    def f(bits: tuple[int, ...]) -> int:
        return int(any(bits[2 * i] and bits[2 * i + 1] for i in range(k)))

    return truth_table_from_function(f, n), n
