"""Application workloads from the paper's introduction.

Each module exercises the converter / shuffle through one of the §I
motivations:

* :mod:`repro.apps.hashing` — unique-permutation hash functions for
  parallel machines sharing memory (Dolev et al., ref. [6]): a shared
  memory contention simulator comparing permutation probing against
  linear probing.
* :mod:`repro.apps.bdd` — a reduced ordered BDD package plus
  variable-ordering search driven by permutation enumeration (refs. [3],
  [5]), including the Achilles-heel function whose BDD swings between
  polynomial and exponential size with the order.
* :mod:`repro.apps.crypto` — permutation-based diffusion layers and
  avalanche measurement (refs. [7], [17], [18]).
* :mod:`repro.apps.dsp` — data-stream reordering for pipelined FFT
  engines (ref. [15]): bit-reversal and stride permutations as converter
  indices, verified against NumPy's FFT.
* :mod:`repro.apps.montecarlo` — parallel Monte-Carlo harness with
  LFSR jump-ahead substreams (the e-estimation workload and the
  sorting-assessment study of Oommen & Ng, ref. [14]).
"""

from repro.apps.hashing import (
    UniquePermutationHasher,
    LinearProbingHasher,
    ContentionResult,
    simulate_contention,
)
from repro.apps.bdd import BDD, achilles_heel, best_variable_order, bdd_size_under_order
from repro.apps.crypto import (
    PermutationDiffusionLayer,
    avalanche_profile,
    SPNetwork,
)
from repro.apps.dsp import (
    bit_reversal_permutation,
    stride_permutation,
    StreamReorderEngine,
    fft_with_explicit_reorder,
)
from repro.apps.pclass import (
    p_representative,
    p_class,
    are_p_equivalent,
    classify_all,
    count_p_classes_burnside,
)
from repro.apps.compression import (
    PermutationCodec,
    best_channel_order,
    compress_reordered,
)
from repro.apps.montecarlo import (
    parallel_derangement_estimate,
    insertion_sort_cost,
    sortedness_study,
)

__all__ = [
    "UniquePermutationHasher",
    "LinearProbingHasher",
    "ContentionResult",
    "simulate_contention",
    "BDD",
    "achilles_heel",
    "best_variable_order",
    "bdd_size_under_order",
    "PermutationDiffusionLayer",
    "avalanche_profile",
    "SPNetwork",
    "bit_reversal_permutation",
    "stride_permutation",
    "StreamReorderEngine",
    "fft_with_explicit_reorder",
    "parallel_derangement_estimate",
    "insertion_sort_cost",
    "sortedness_study",
    "p_representative",
    "p_class",
    "are_p_equivalent",
    "classify_all",
    "count_p_classes_burnside",
    "PermutationCodec",
    "best_channel_order",
    "compress_reordered",
]
