"""Command-line interface: ``repro-perm <subcommand>`` (or ``python -m repro``).

Subcommands mirror the paper's artefacts:

* ``unrank N n``       — print the N-th n-element permutation (Table I row)
* ``rank P0 P1 …``     — print the index of a permutation
* ``table1 [n]``       — print the full factorial-number-system table
* ``shuffle n [count]``— sample random permutations from the Knuth circuit
* ``resources n``      — Table-III-style resource row for the converter
* ``synth n``          — the unified synthesis flow: pass-pipeline
  optimisation (``--passes p1,p2`` / ``--no-opt``; ``--checked``
  equivalence-gates every pass), k-LUT mapping and timing, with a
  per-pass delta table and the resource row
* ``fig4 [samples]``   — run the Fig.-4 histogram experiment
* ``validate``         — population-scale streaming statistical
  validation: stream ``--samples`` permutations from the gate-level
  converter through the chosen engine (``--engine``), folding them into
  mergeable accumulators (uniformity over rank buckets, derangements,
  serial correlation, Fig.-2 pigeonhole bias) sharded via the hardened
  runner (``--shards/--workers``), with atomic ``repro-analysis/1``
  checkpoints (``--checkpoint``/``--resume`` — resumed campaigns are
  bit-identical) and a machine-readable report (``--report``); exit 1
  if the statistical verdict fails
* ``faults n``         — fault-injection campaign + coverage report
* ``serve n``          — drive the batch-serving layer with a synthetic
  closed-loop load generator and print throughput/latency percentiles;
  ``--supervised`` routes sweeps through the fault-tolerant worker tier
  (restart, breakers, degradation ladder) with every response verified,
  and ``--chaos`` runs the seeded fault-injection campaign against it,
  reporting the invariants (zero incorrect responses, every killed
  worker restarted, availability floor) — exit 1 if any is violated.
  ``--workers W`` routes sweeps through the multi-process shard pool
  (shared-memory result rings, restart-with-backoff, per-shard
  admission control); ``--listen [PORT]`` runs the ``repro-serve/1``
  binary TCP front end until SIGINT, and ``--connect HOST:PORT`` is
  the matching multi-connection socket load generator with
  client-side verification (``--connections``, ``--depth``,
  ``--frame-count``, ``--min-availability``).
  Telemetry flags: ``--expose PORT`` starts the pull-based exposition
  endpoint (``/metrics``, ``/metrics.json``, ``/traces``, ``/health``)
  next to the run, ``--trace-sample R`` head-samples batch traces into
  the span ring, ``--trace-dump PATH`` writes the ring as a
  ``repro-traces/1`` document, ``--profile PATH`` runs the stack-sampling
  profiler and writes a ``repro-profile/1`` report, and ``--linger S``
  keeps the endpoint scrapeable after the load completes
* ``obs top``          — refreshing terminal dashboard scraped from a
  live exposition endpoint (queue depth, shed/degraded rates, breaker
  states, cache hit ratio, latency-digest percentiles)
* ``trace <cmd> …``    — run any subcommand under a tracing span and
  print the span tree to stderr (``--vcd PATH`` additionally records a
  gate-level waveform for ``unrank``)

Global flags (before the subcommand):

* ``--metrics`` — enable the telemetry registry and dump the collected
  metrics in Prometheus exposition format to stderr on exit;
* ``--quiet``   — suppress structured progress events (the final report
  on stdout is unaffected).

Invalid input (an index outside ``0..n!−1``, a non-permutation element
list) never produces a traceback: typed :class:`~repro.errors.ReproError`
failures print a one-line diagnostic on stderr and exit with status 2,
the conventional usage-error code.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import FactorialDigits, factorial
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import rank as rank_perm
from repro.errors import ReproError
from repro.obs import metrics as _metrics
from repro.obs.events import NullSink, SpanEventSink, StderrSink, TeeSink

__all__ = ["main"]

_CLI_COMMANDS = _metrics.REGISTRY.counter(
    "repro_cli_commands_total", "CLI subcommand invocations", ("command",)
)


def _cmd_unrank(args: argparse.Namespace) -> int:
    if args.n < 1:
        raise ReproError("n must be at least 1")
    conv = IndexToPermutationConverter(args.n)
    perm = conv.convert(args.index)
    print(" ".join(str(x) for x in perm))
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    print(rank_perm(args.elements))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    n = args.n
    conv = IndexToPermutationConverter(n)
    print(f"{'N':>4}  {'digits':>{2 * n}}  permutation")
    for idx in range(factorial(n)):
        digits = FactorialDigits.from_index(idx, n)
        perm = conv.convert(idx)
        print(f"{idx:>4}  {str(digits):>{2 * n}}  {' '.join(str(x) for x in perm)}")
    return 0


def _cmd_shuffle(args: argparse.Namespace) -> int:
    circuit = KnuthShuffleCircuit(args.n)
    for row in circuit.sample(args.count):
        print(" ".join(str(int(x)) for x in row))
    return 0


def _cmd_resources(args: argparse.Namespace) -> int:
    from repro.flow import FlowTarget, build_circuit, synthesize
    from repro.fpga import render_resource_table

    nl = build_circuit("converter", args.n, pipelined=True)
    result = synthesize(nl, FlowTarget(), n=args.n, tracer=getattr(args, "_tracer", None))
    print(render_resource_table([result.report]))
    return 0


def _require_engine(engine: str) -> None:
    """Reject an unknown simulation backend with a one-line diagnostic.

    Validated here rather than via argparse ``choices`` so a typo exits
    with the same status-2 + stderr contract as every other bad value
    (argparse would exit 2 too, but with a usage dump instead of the
    taxonomy's one-liner, and untestable through ``main()``'s return).
    """
    from repro.hdl.engine import BACKENDS

    if engine not in BACKENDS:
        raise ReproError(
            f"unknown engine {engine!r}; expected one of " + ", ".join(BACKENDS)
        )


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.flow import FlowTarget, build_circuit, render_flow_report, synthesize

    _require_engine(args.engine)
    if args.no_opt and args.passes is not None:
        raise ReproError("--no-opt and --passes are mutually exclusive")
    if args.no_opt:
        passes: tuple[str, ...] | None = ()
    elif args.passes is not None:
        passes = tuple(p for p in args.passes.split(",") if p)
    else:
        passes = None
    if args.n < 1:
        raise ReproError("n must be at least 1")
    nl = build_circuit(args.circuit, args.n, pipelined=args.pipelined)
    target = FlowTarget(k=args.k, passes=passes, checked=args.checked, engine=args.engine)
    try:
        result = synthesize(nl, target, n=args.n, tracer=getattr(args, "_tracer", None))
    except ValueError as exc:  # unknown pass name from the registry
        raise ReproError(str(exc)) from exc
    print(render_flow_report(result))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.analysis.distribution import fig4_experiment

    result = fig4_experiment(samples=args.samples)
    print(result.render())
    print(
        f"\nexpected/bar={result.expected_per_bar:.1f}  "
        f"min={result.min_bar}  max={result.max_bar}  "
        f"chi2 p={result.p_value:.4f}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.checkpoint import save_checkpoint, validate_payload
    from repro.analysis.stream import CampaignConfig, run_population_campaign

    cfg = CampaignConfig(
        n=args.n,
        samples=args.samples,
        seed=args.seed,
        source=args.source,
        engine=args.engine,
        m=args.m,
        block=args.block,
        buckets=args.buckets,
    )
    result = run_population_campaign(
        cfg,
        shards=args.shards,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        timeout=args.timeout,
        alpha=args.alpha,
        battery_draws=args.battery_draws,
        tracer=getattr(args, "_tracer", None),
    )
    print(result.render())
    if args.report:
        payload = validate_payload(result.payload(), kind="report")
        save_checkpoint(args.report, payload)
        print(f"\nreport written to {args.report}")
    # a failed verdict is an experiment outcome, not a usage error:
    # exit 1 (the chaos-campaign convention), never 2
    return 0 if result.verdict["passed"] else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.robustness.campaign import CampaignSpec, run_campaign

    _require_engine(args.engine)
    tracer = getattr(args, "_tracer", None)
    sinks = []
    if not args.quiet:
        sinks.append(StderrSink(prefix="campaign"))
    if tracer is not None:
        sinks.append(SpanEventSink(tracer))
    events = TeeSink(*sinks) if sinks else NullSink()

    spec = CampaignSpec(
        circuit=args.circuit,
        n=args.n,
        model=args.model,
        samples=args.samples,
        seed=args.seed,
        optimized=args.optimized,
        engine=args.engine,
    )
    result = run_campaign(
        spec,
        workers=args.workers,
        degrade=args.degrade,
        events=events,
        tracer=tracer,
    )
    print(result.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        WORKLOADS,
        PermutationService,
        PoolConfig,
        PooledService,
        ServiceConfig,
        SupervisedService,
        run_closed_loop,
    )

    if args.n < 1:
        raise ReproError("n must be at least 1")
    if args.requests < 1:
        raise ReproError("--requests must be positive")
    if args.clients < 1:
        raise ReproError("--clients must be positive")
    if args.connect is not None:
        return _cmd_serve_connect(args)
    if args.chaos:
        return _cmd_serve_chaos(args)
    if args.workers < 0:
        raise ReproError("--workers must be non-negative")
    if args.workers and args.supervised:
        raise ReproError("--workers and --supervised are mutually exclusive")
    _require_engine(args.engine)
    if args.batch_size is not None and args.batch_size < 1:
        raise ReproError(f"--batch-size must be positive, got {args.batch_size}")
    if args.workload != "mixed" and args.workload not in WORKLOADS:
        raise ReproError(
            f"unknown workload {args.workload!r}; expected mixed or one of "
            + ", ".join(WORKLOADS)
        )
    if args.workload == "shuffle" and args.n < 2:
        raise ReproError("workload shuffle needs n >= 2")
    mix = None if args.workload == "mixed" else {args.workload: 1.0}
    try:
        config = ServiceConfig(
            max_batch=args.batch_size,
            batch_deadline_s=args.deadline_ms / 1000.0,
            max_queue_depth=args.queue_depth,
            rng_seed=args.seed,
            engine=args.engine,
        )
    except ValueError as exc:  # e.g. batch size beyond the lane quantum
        raise ReproError(str(exc)) from exc

    tracer = getattr(args, "_tracer", None)
    ring = None
    trace_sample = args.trace_sample
    if trace_sample is None and args.trace_dump is not None:
        trace_sample = 1.0  # a requested dump implies sampling
    if tracer is None and trace_sample:
        from repro.obs.sampling import ProbabilisticSampler, SpanRing
        from repro.obs.tracing import Tracer

        if not 0.0 <= trace_sample <= 1.0:
            raise ReproError("--trace-sample must be in [0, 1]")
        ring = SpanRing(512)
        tracer = Tracer(
            sampler=ProbabilisticSampler(trace_sample, seed=args.seed),
            ring=ring,
            keep_roots=False,
        )
    elif tracer is not None:
        ring = tracer.ring

    profiler = None
    if args.profile is not None:
        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler()

    if args.workers:
        svc_cm = PooledService(
            config, PoolConfig(workers=args.workers), tracer=tracer
        )
    elif args.supervised:
        svc_cm = SupervisedService(config, tracer=tracer)
    else:
        svc_cm = PermutationService(config, tracer=tracer)
    if args.listen is not None:
        return _serve_listen(args, svc_cm, ring)
    verify = args.supervised or bool(args.workers)
    exposer = None
    try:
        with svc_cm as svc:
            if args.expose is not None:
                from repro.obs.httpexp import ExpositionServer

                exposer = ExpositionServer(
                    ring=ring,
                    health_fn=lambda: _serve_health(svc),
                    port=args.expose,
                ).start()
                print(f"exposition endpoint {exposer.url}", file=sys.stderr)
            if profiler is not None:
                profiler.start()
            try:
                report = run_closed_loop(
                    svc,
                    args.n,
                    total=args.requests,
                    clients=args.clients,
                    mix=mix,
                    seed=args.seed,
                    verify=verify,
                )
                stats = svc.stats()
            finally:
                if profiler is not None:
                    profiler.stop()
            _print_serve_report(args, report, stats)
            rc = 1 if verify and report.incorrect else 0
            if exposer is not None and args.linger > 0:
                import time as _time

                _time.sleep(args.linger)
    finally:
        if exposer is not None:
            exposer.stop()
    if args.trace_dump is not None and ring is not None:
        import json as _json

        with open(args.trace_dump, "w") as fh:
            _json.dump(ring.dump(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  traces      wrote {args.trace_dump}")
    if profiler is not None:
        profiler.dump(args.profile)
        print(f"  profile     wrote {args.profile}")
    return rc


def _serve_listen(args: argparse.Namespace, svc_cm, ring) -> int:
    """``repro serve N --listen``: run the socket front end until SIGINT.

    The bound address is printed on stdout (parseable by scripts that
    pass ``--listen 0`` for an OS-assigned port); the process then parks
    until interrupted and exits 0 after a clean drain of the service and
    the worker pool.
    """
    import signal as _signal
    import threading

    from repro.serve import NetServer

    # A background job started from a non-interactive shell inherits
    # SIGINT *ignored* (POSIX), which would leave `kill -INT` unable to
    # trigger the clean drain; restore delivery explicitly and route
    # SIGTERM onto the same path so plain `kill` also drains.
    def _on_term(signum, frame):
        raise KeyboardInterrupt

    try:
        _signal.signal(_signal.SIGINT, _signal.default_int_handler)
        _signal.signal(_signal.SIGTERM, _on_term)
    except ValueError:
        pass  # not the main thread: rely on the caller's handling

    exposer = None
    try:
        with svc_cm as svc:
            with NetServer(svc, port=args.listen) as server:
                host, port = server.address
                print(f"serving repro-serve/1 on {host}:{port}", flush=True)
                if args.expose is not None:
                    from repro.obs.httpexp import ExpositionServer

                    exposer = ExpositionServer(
                        ring=ring,
                        health_fn=lambda: _serve_health(svc),
                        port=args.expose,
                    ).start()
                    print(
                        f"exposition endpoint {exposer.url}",
                        file=sys.stderr,
                        flush=True,
                    )
                try:
                    threading.Event().wait()
                except KeyboardInterrupt:
                    print("shutting down", file=sys.stderr, flush=True)
    finally:
        if exposer is not None:
            exposer.stop()
    return 0


def _cmd_serve_connect(args: argparse.Namespace) -> int:
    """``repro serve N --connect HOST:PORT``: socket load generator.

    Drives a remote ``repro-serve/1`` server with a multi-connection
    closed loop, verifying every permutation client-side, and exits 1
    when availability falls below ``--min-availability`` or any response
    fails verification.
    """
    from repro.serve import WORKLOADS, run_socket_loadgen

    host, _, port_s = args.connect.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_s)
    except ValueError:
        raise ReproError(
            f"--connect expects HOST:PORT, got {args.connect!r}"
        ) from None
    if args.connections < 1:
        raise ReproError("--connections must be positive")
    if args.depth < 1:
        raise ReproError("--depth must be positive")
    if args.frame_count < 1:
        raise ReproError("--frame-count must be positive")
    if args.workload != "mixed" and args.workload not in WORKLOADS:
        raise ReproError(
            f"unknown workload {args.workload!r}; expected mixed or one of "
            + ", ".join(WORKLOADS)
        )
    mix = None if args.workload == "mixed" else {args.workload: 1.0}
    try:
        report = run_socket_loadgen(
            host,
            port,
            args.n,
            total=args.requests,
            connections=args.connections,
            depth=args.depth,
            frame_count=args.frame_count,
            mix=mix,
            seed=args.seed,
            verify=True,
        )
    except (OSError, ValueError) as exc:
        raise ReproError(f"socket load against {host}:{port} failed: {exc}") from exc
    pct = report.latency_percentiles()
    print(
        f"socket loadgen: {report.completed}/{args.requests} frames against "
        f"{host}:{port} ({args.connections} connections, depth {args.depth}, "
        f"{args.frame_count} lanes/frame)"
    )
    print(f"  throughput  {report.throughput_rps:10.1f} frames/s "
          f"({report.lanes_per_second:.1f} lanes/s)")
    print(
        f"  latency     p50={pct['p50'] * 1e3:.3f}ms  "
        f"p90={pct['p90'] * 1e3:.3f}ms  p99={pct['p99'] * 1e3:.3f}ms  "
        f"max={pct['max'] * 1e3:.3f}ms"
    )
    print(
        f"  availability {report.availability:.4f}  shed={report.shed} "
        f"degraded={report.degraded_shed} abandoned={report.abandoned}"
    )
    print(f"  verified    incorrect={report.incorrect}")
    if report.incorrect:
        return 1
    if args.min_availability is not None:
        if report.availability < args.min_availability:
            print(
                f"repro-perm: availability {report.availability:.4f} below "
                f"floor {args.min_availability:.4f}",
                file=sys.stderr,
            )
            return 1
    return 0


def _serve_health(svc) -> dict:
    """The ``/health`` document for a running serve command.

    ``status`` is ``"ok"`` unless a supervised shard has lost its worker
    or a pooled shard group has every replica down (lazy spawn means an
    empty shard table is healthy, not degraded).  For the pooled tier the
    document also carries per-worker rows (pid, shard, sweeps, restarts)
    that ``obs top`` renders as its worker table.
    """
    pool = getattr(svc, "pool", None)
    if pool is not None:
        rows = pool.worker_rows()
        by_shard: dict[str, list] = {}
        for row in rows:
            by_shard.setdefault(row["shard"], []).append(row)
        shards = {
            shard: {
                "alive": sum(1 for r in group if r["alive"]),
                "replicas": len(group),
            }
            for shard, group in by_shard.items()
        }
        ok = all(info["alive"] > 0 for info in shards.values())
        return {
            "status": "ok" if ok else "degraded",
            "shards": shards,
            "workers": rows,
        }
    supervisor = getattr(svc, "supervisor", None)
    if supervisor is None:
        return {"status": "ok", "shards": {}}
    shards = supervisor.health_check()
    ok = all(info["alive"] for info in shards.values())
    return {"status": "ok" if ok else "degraded", "shards": shards}


def _print_serve_report(args: argparse.Namespace, report, stats: dict) -> None:
    pct = report.latency_percentiles()
    by_workload = " ".join(
        f"{w}={c}" for w, c in sorted(report.by_workload.items())
    )
    print(
        f"served {report.completed} requests (n={args.n}, "
        f"{report.clients} clients, workload {args.workload})"
    )
    print(f"  throughput  {report.throughput_rps:10.1f} req/s")
    print(
        f"  latency     p50={pct['p50'] * 1e3:.3f}ms  "
        f"p90={pct['p90'] * 1e3:.3f}ms  p99={pct['p99'] * 1e3:.3f}ms  "
        f"max={pct['max'] * 1e3:.3f}ms"
    )
    print(f"  batching    mean {report.mean_lanes:.1f} lanes/sweep")
    print(
        f"  cache       {stats['cache_hits']} hits / "
        f"{stats['cache_misses']} misses"
    )
    print(f"  shed        {report.shed}")
    print(f"  workloads   {by_workload}")
    if args.supervised:
        sup = stats["supervisor"]
        modes = " ".join(f"{m}={c}" for m, c in sorted(report.modes.items()))
        print(f"  modes       {modes}")
        print(
            f"  supervisor  restarts={sup['restarts']} "
            f"check_failures={sup['check_failures']} "
            f"failovers={sup['served_fallback']} "
            f"breaker_trips={sup['breaker_trips']}"
        )
        print(f"  verified    incorrect={report.incorrect}")
    if getattr(args, "workers", 0) and "pool" in stats:
        pool = stats["pool"]
        print(
            f"  pool        workers={pool['workers_alive']} "
            f"sweeps={pool['served_worker']} "
            f"restarts={pool['restarts']} fallback={pool['served_fallback']}"
        )
        print(
            f"  pool cache  {pool['cache_hits']} hits / "
            f"{pool['cache_misses']} misses (worker tier)"
        )
        print(f"  verified    incorrect={report.incorrect}")


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    """``repro serve N --chaos``: the seeded fault-injection campaign."""
    import json as _json

    from repro.serve import run_chaos_campaign

    payload = run_chaos_campaign(
        n=args.n,
        requests=args.requests,
        clients=args.clients,
        seed=args.seed,
        tracer=getattr(args, "_tracer", None),
    )
    injected = payload["chaos"]["injected"]
    print(
        f"chaos campaign: {payload['requests']} requests under fire, "
        f"{payload['recovery_requests']} in recovery (n={args.n}, "
        f"seed={args.seed})"
    )
    print(
        "  injected    "
        + " ".join(f"{k}={v}" for k, v in sorted(injected.items()))
    )
    print(
        f"  invariants  incorrect={payload['incorrect_responses']} "
        f"killed={payload['workers_killed']} "
        f"restarts={payload['worker_restarts']} "
        f"quarantines={payload['kernel_quarantines']}"
    )
    print(
        f"  service     availability={payload['availability_chaos']:.4f} "
        f"(chaos) {payload['availability_recovery']:.4f} (recovery) "
        f"failovers={payload['failovers']}"
    )
    print(f"  recovered   {payload['recovered']}")
    if args.out:
        with open(args.out, "w") as fh:
            _json.dump(payload, fh, indent=1)
        print(f"  wrote       {args.out}")
    ok = (
        payload["incorrect_responses"] == 0
        and payload["recovered"]
        and payload["availability_chaos"] >= 0.90
    )
    return 0 if ok else 1


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """``repro obs top``: scrape a live endpoint, render the dashboard."""
    import json as _json
    import time as _time
    import urllib.error

    from repro.obs.httpexp import fetch_json, render_dashboard

    url = args.url.rstrip("/")
    frame = 0
    prev: dict | None = None
    while True:
        try:
            snapshot = fetch_json(url + "/metrics.json")
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot scrape {url}/metrics.json: {exc}") from exc
        try:
            health: dict | None = fetch_json(url + "/health")
        except urllib.error.HTTPError as exc:
            # 503 still carries the health document (degraded service)
            try:
                health = _json.loads(exc.read().decode())
            except ValueError:
                health = {"status": f"http {exc.code}"}
        except (OSError, ValueError):
            health = None
        panel = render_dashboard(
            snapshot, health, prev=prev, interval_s=args.interval
        )
        prev = snapshot
        if args.frames != 1 and frame > 0:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear between refreshes
        print(panel, flush=True)
        frame += 1
        if args.frames and frame >= args.frames:
            return 0
        _time.sleep(args.interval)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tracing import Tracer

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise ReproError("trace needs a subcommand, e.g. `trace faults 4`")
    if rest[0] == "trace":
        raise ReproError("trace cannot be nested")

    inner = _build_parser().parse_args(rest)
    inner.quiet = args.quiet or inner.quiet
    tracer = Tracer()
    inner._tracer = tracer

    if args.vcd is not None:
        if inner.command != "unrank":
            raise ReproError("--vcd is only supported for `trace unrank N n`")
        from repro.obs.probes import trace_converter

        if inner.n < 1:
            raise ReproError("n must be at least 1")
        with tracer.span("unrank", index=inner.index, n=inner.n, vcd=args.vcd):
            perms, _probe = trace_converter(
                inner.n, [inner.index], vcd_path=args.vcd, tracer=tracer
            )
        print(" ".join(str(x) for x in perms[0]))
        rc = 0
    else:
        with tracer.span(inner.command, argv=" ".join(rest)):
            rc = inner.fn(inner)
    print(tracer.render(), file=sys.stderr)
    return rc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perm",
        description="Hardware index-to-permutation converter reproduction",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable telemetry and dump exposition-format metrics to stderr",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress structured progress events (reports are unaffected)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("unrank", help="index -> permutation")
    p.add_argument("index", type=int)
    p.add_argument("n", type=int)
    p.set_defaults(fn=_cmd_unrank)

    p = sub.add_parser("rank", help="permutation -> index")
    p.add_argument("elements", type=int, nargs="+")
    p.set_defaults(fn=_cmd_rank)

    p = sub.add_parser("table1", help="print the paper's Table I")
    p.add_argument("n", type=int, nargs="?", default=4)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("shuffle", help="sample Knuth-shuffle permutations")
    p.add_argument("n", type=int)
    p.add_argument("count", type=int, nargs="?", default=10)
    p.set_defaults(fn=_cmd_shuffle)

    p = sub.add_parser("resources", help="Table-III-style resource row")
    p.add_argument("n", type=int)
    p.set_defaults(fn=_cmd_resources)

    p = sub.add_parser(
        "synth",
        help="pass-pipeline optimisation + LUT map + timing, one flow",
    )
    p.add_argument("n", type=int)
    p.add_argument(
        "--circuit", choices=["converter", "shuffle"], default="converter",
        help="which of the paper's circuits to synthesise (default: converter)",
    )
    p.add_argument(
        "--pipelined", action="store_true",
        help="insert the §II-B pipeline registers before synthesis",
    )
    p.add_argument(
        "--passes", default=None, metavar="P1,P2,…",
        help="comma-separated pass pipeline (default: the full pipeline; "
        "see repro.hdl.passes.PASSES for names)",
    )
    p.add_argument(
        "--no-opt", action="store_true",
        help="skip optimisation: map the netlist exactly as constructed",
    )
    p.add_argument(
        "--checked", action="store_true",
        help="equivalence-gate every pass (BDD proof or batched simulation)",
    )
    p.add_argument(
        "--k", type=int, default=6, help="LUT input size (default: 6)"
    )
    p.add_argument(
        "--engine", default="auto",
        help="simulation backend for --checked equivalence runs: auto, "
        "interp, compiled or vector (default: auto — compiled whenever "
        "the check allows it)",
    )
    p.set_defaults(fn=_cmd_synth)

    p = sub.add_parser("fig4", help="run the Fig.-4 histogram experiment")
    p.add_argument("samples", type=int, nargs="?", default=1 << 18)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser(
        "validate",
        help="population-scale streaming statistical validation campaign",
    )
    p.add_argument("--n", type=int, default=8, help="permutation size (default: 8)")
    p.add_argument(
        "--samples", type=int, default=1_000_000,
        help="permutations to stream through the engine (default: 1e6)",
    )
    p.add_argument("--seed", type=int, default=2012, help="campaign seed")
    p.add_argument(
        "--source", choices=["lfsr", "ideal"], default="lfsr",
        help="index source: the paper's LFSR+scaler stack, or PCG64 "
        "uniform as the calibration null (default: lfsr)",
    )
    p.add_argument(
        "--engine", default="vector",
        help="simulation backend: interp, compiled, vector or auto "
        "(default: vector — statistics are engine-invariant)",
    )
    p.add_argument("--m", type=int, default=31, help="LFSR width (default: 31)")
    p.add_argument(
        "--block", type=int, default=4096,
        help="lanes per sweep; the determinism quantum (default: 4096)",
    )
    p.add_argument(
        "--buckets", type=int, default=4093,
        help="rank residue buckets past the dense-cell budget (default: 4093)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="contiguous block ranges to fan out over workers (default: 1)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="process workers (default: a conservative machine-based count)",
    )
    p.add_argument(
        "--checkpoint", default=None,
        help="write a repro-analysis/1 checkpoint here after every round",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint (bit-identical to an uninterrupted run)",
    )
    p.add_argument(
        "--report", default=None,
        help="write the repro-analysis/1 report JSON here",
    )
    p.add_argument(
        "--timeout", type=float, default=None, help="per-shard timeout (seconds)",
    )
    p.add_argument(
        "--alpha", type=float, default=1e-6,
        help="p-value floor for ideal-source gates (default: 1e-6)",
    )
    p.add_argument(
        "--battery-draws", type=int, default=4096,
        help="randtests battery draws over the raw RNG stack; 0 skips "
        "(default: 4096)",
    )
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser(
        "faults", help="fault-injection campaign with coverage report"
    )
    p.add_argument("n", type=int)
    p.add_argument(
        "--model", choices=["stuck", "seu", "bridge"], default="stuck",
        help="fault model (default: stuck-at)",
    )
    p.add_argument(
        "--circuit", choices=["converter", "shuffle"], default="converter",
        help="which of the paper's circuits to attack (default: converter)",
    )
    p.add_argument(
        "--samples", type=int, default=None,
        help="sample this many fault sites instead of the exhaustive set",
    )
    p.add_argument("--seed", type=int, default=0, help="sampling seed")
    p.add_argument(
        "--optimized", action="store_true",
        help="inject faults into the pass-pipeline-optimised netlist "
        "(the circuit the synthesis flow actually reports)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="process workers for the sharded campaign (default: 1)",
    )
    p.add_argument(
        "--degrade", action="store_true",
        help="keep partial statistics if shards fail permanently",
    )
    p.add_argument(
        "--engine", default="auto",
        help="simulation backend: auto, interp, compiled or vector "
        "(default: auto — fault-parallel compiled sweeps for stuck/seu "
        "models, interpreter otherwise; vector packs thousands of "
        "faults per sweep)",
    )
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "serve", help="closed-loop load test of the batch-serving layer"
    )
    p.add_argument("n", type=int)
    p.add_argument(
        "--requests", type=int, default=200,
        help="total requests to complete (default: 200)",
    )
    p.add_argument(
        "--clients", type=int, default=8,
        help="concurrent closed-loop clients (default: 8)",
    )
    p.add_argument(
        "--workload", default="mixed",
        help="request mix: mixed, unrank, random_perm or shuffle "
        "(default: mixed)",
    )
    p.add_argument(
        "--batch-size", type=int, default=None, metavar="B",
        help="micro-batcher lane budget (default: the engine's sweep "
        "quantum — 63 lanes compiled, 4096 vector)",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=2.0,
        help="micro-batch flush deadline in milliseconds (default: 2)",
    )
    p.add_argument(
        "--queue-depth", type=int, default=None,
        help="admission-control queue limit; beyond it requests are "
        "shed (default: 4x the engine's sweep quantum)",
    )
    p.add_argument(
        "--engine", default="auto",
        help="simulation backend behind the serving sweeps: auto, "
        "interp, compiled or vector (default: auto; vector lifts the "
        "batch quantum from 63 to 4096 lanes)",
    )
    p.add_argument("--seed", type=int, default=0, help="load-mix seed")
    p.add_argument(
        "--supervised", action="store_true",
        help="serve through the supervised multi-worker tier (breakers, "
        "restart, degradation ladder) with client-side verification",
    )
    p.add_argument(
        "--chaos", action="store_true",
        help="run the seeded chaos campaign against the supervised tier "
        "and report the fault-tolerance invariants (implies --supervised)",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="with --chaos: also write the campaign payload as JSON",
    )
    p.add_argument(
        "--expose", type=int, default=None, metavar="PORT",
        help="start the pull-based exposition endpoint on 127.0.0.1:PORT "
        "(0 = OS-assigned; the resolved URL is printed to stderr)",
    )
    p.add_argument(
        "--linger", type=float, default=0.0, metavar="S",
        help="with --expose: keep the endpoint up S seconds after the "
        "load completes so late scrapes see the final counters",
    )
    p.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help="head-sample batch traces at RATE in [0,1] into the span "
        "ring behind /traces (default: off)",
    )
    p.add_argument(
        "--trace-dump", metavar="PATH", default=None,
        help="write the span ring as a repro-traces/1 JSON document on "
        "exit (implies --trace-sample 1.0 unless given)",
    )
    p.add_argument(
        "--profile", metavar="PATH", default=None,
        help="run the continuous stack-sampling profiler during the load "
        "and write a repro-profile/1 JSON report",
    )
    p.add_argument(
        "--workers", type=int, default=0, metavar="W",
        help="serve through the multi-process pool with W replica "
        "workers per shard (default: 0 = in-process sweeps)",
    )
    p.add_argument(
        "--listen", type=int, default=None, nargs="?", const=0,
        metavar="PORT",
        help="run the repro-serve/1 TCP front end on 127.0.0.1:PORT "
        "(omitted PORT or 0 = OS-assigned, printed on stdout) until "
        "SIGINT instead of driving an in-process load",
    )
    p.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="client mode: drive a remote repro-serve/1 server with the "
        "socket load generator and verify every response",
    )
    p.add_argument(
        "--connections", type=int, default=2,
        help="with --connect: concurrent TCP connections (default: 2)",
    )
    p.add_argument(
        "--depth", type=int, default=2,
        help="with --connect: in-flight frames per connection (default: 2)",
    )
    p.add_argument(
        "--frame-count", type=int, default=1, metavar="C",
        help="with --connect: permutations requested per frame (default: 1)",
    )
    p.add_argument(
        "--min-availability", type=float, default=None, metavar="F",
        help="with --connect: exit 1 if availability falls below F",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "obs", help="telemetry tooling against a live exposition endpoint"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    t = obs_sub.add_parser(
        "top", help="refreshing terminal dashboard from /metrics.json + /health"
    )
    t.add_argument(
        "--url", default="http://127.0.0.1:9109",
        help="exposition endpoint base URL (default: http://127.0.0.1:9109)",
    )
    t.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    t.add_argument(
        "--frames", type=int, default=0,
        help="stop after N frames; 0 = refresh until interrupted",
    )
    t.set_defaults(fn=_cmd_obs_top)

    p = sub.add_parser(
        "trace", help="run a subcommand under a tracing span tree"
    )
    p.add_argument(
        "--vcd", metavar="PATH", default=None,
        help="for `trace unrank`: also record a gate-level VCD waveform",
    )
    p.add_argument("rest", nargs=argparse.REMAINDER, metavar="cmd ...")
    p.set_defaults(fn=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.metrics:
        _metrics.REGISTRY.enable()
    try:
        _CLI_COMMANDS.inc(command=args.command)
        rc = args.fn(args)
    except ReproError as exc:
        print(f"repro-perm: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro-perm: interrupted", file=sys.stderr)
        return 130
    finally:
        if args.metrics:
            sys.stderr.write(_metrics.REGISTRY.render_exposition())
            _metrics.REGISTRY.disable()
    return rc


if __name__ == "__main__":
    sys.exit(main())
