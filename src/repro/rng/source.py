"""Index sources feeding the converter front-end.

The converter itself is a pure function of its index input; what varies
between the paper's experiments is *where the index comes from*:

* Table II streams sequential indices (a counter) to measure throughput;
* the §III-A random generator feeds scaled LFSR draws (``k = n!``);
* test benches replay explicit index lists.

Sources are infinite iterators of integers in ``0 .. limit−1`` plus a
``take`` convenience for batch draws.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.rng.lfsr import LFSRBase
from repro.rng.scaled import ScaledRandomInteger

__all__ = ["IndexSource", "CounterSource", "ListSource", "LFSRIndexSource"]


class IndexSource:
    """Base class: an endless stream of indices below ``limit``."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit

    def __iter__(self) -> Iterator[int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def take(self, count: int) -> np.ndarray:
        """Materialise the next ``count`` indices as an int64/object array."""
        it = iter(self)
        use_object = self.limit > np.iinfo(np.int64).max
        dtype = object if use_object else np.int64
        out = np.empty(count, dtype=dtype)
        for i in range(count):
            out[i] = next(it)
        return out


class CounterSource(IndexSource):
    """Sequential indices ``start, start+1, …`` wrapping at ``limit``.

    This is the Table-II workload: the hardware pipeline is fed one new
    index per clock, producing all ``n!`` permutations in order.
    """

    def __init__(self, limit: int, start: int = 0):
        super().__init__(limit)
        if not (0 <= start < limit):
            raise ValueError("start must lie in 0..limit-1")
        self.value = start
        self._iterating = False

    def __iter__(self) -> Iterator[int]:
        while True:
            v = self.value
            self.value = (v + 1) % self.limit
            yield v


class ListSource(IndexSource):
    """Replay an explicit index sequence, cycling at the end."""

    def __init__(self, indices: Sequence[int], limit: int | None = None):
        seq = [int(i) for i in indices]
        if not seq:
            raise ValueError("index list must be non-empty")
        lim = limit if limit is not None else max(seq) + 1
        super().__init__(lim)
        for i in seq:
            if not (0 <= i < lim):
                raise ValueError(f"index {i} outside 0..{lim - 1}")
        self.indices = seq
        self._pos = 0

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.indices[self._pos]
            self._pos = (self._pos + 1) % len(self.indices)


class LFSRIndexSource(IndexSource):
    """Random indices from the Fig.-2 scaled generator with ``k = limit``."""

    def __init__(
        self, limit: int, lfsr: LFSRBase | None = None, m: int = 31, seed: int | None = None
    ):
        super().__init__(limit)
        self.generator = ScaledRandomInteger(limit, lfsr=lfsr, m=m, seed=seed)

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.generator.next_int()

    def take(self, count: int) -> np.ndarray:
        if self.limit > np.iinfo(np.int64).max:
            return super().take(count)
        return self.generator.ints(count)
