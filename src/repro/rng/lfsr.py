"""Linear feedback shift registers, bit-exact with the hardware.

Both canonical forms are provided:

* :class:`FibonacciLFSR` (many-to-one): the feedback bit is the XOR of the
  tapped stages and is shifted in at the bottom.
* :class:`GaloisLFSR` (one-to-many): the output bit is XORed into the
  tapped stages as the register shifts.

With a primitive feedback polynomial both forms are *maximal*: they visit
every nonzero ``m``-bit state exactly once per period of ``2^m − 1`` (the
all-zero state is a fixed point and is excluded, which is why the paper's
5-bit generator produces "all 31 5-bit numbers except 0").

Because the state transition is linear over GF(2), ``k`` steps compose into
a single matrix; :meth:`LFSRBase.jump` exponentiates it in ``O(m³ log k)``
to leap ahead without generating intermediate states.  That turns one
hardware stream into any number of non-overlapping parallel substreams —
the standard leap-frog decomposition used in parallel Monte-Carlo — and is
how :mod:`repro.apps.montecarlo` shards work across workers.

:func:`add_lfsr` emits the equivalent register+XOR netlist into a circuit
under construction; this is what the Knuth-shuffle circuit instantiates
per stage for Table IV's resource accounting.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist
from repro.rng.taps import feedback_mask, taps_for_width

__all__ = [
    "LFSRBase",
    "FibonacciLFSR",
    "GaloisLFSR",
    "dense_seed",
    "add_lfsr",
    "build_lfsr_netlist",
]


def _parity(x: int) -> int:
    return bin(x).count("1") & 1


def dense_seed(width: int, salt: int = 0) -> int:
    """A nonzero seed with roughly half its bits set.

    The tabulated polynomials are low-weight (trinomials/pentanomials),
    and low-weight *seeds* then sit in a sparse stretch of the
    m-sequence: from seed 1 the 31-bit register emits only ~29 % ones
    over its first 2,000 outputs.  Statistical consumers should start
    from a dense state (or :meth:`LFSRBase.warm_up` past the stretch);
    this helper derives one from the golden-ratio constant.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    full = (1 << width) - 1
    value = (0x9E3779B97F4A7C15 * (salt * 2 + 1)) % full
    return value + 1  # in 1..full: nonzero and within range


class LFSRBase:
    """Common machinery for both LFSR forms."""

    def __init__(self, width: int, taps: tuple[int, ...] | None = None, seed: int = 1):
        if width < 2:
            raise ValueError("LFSR width must be at least 2")
        self.width = width
        self.taps = tuple(taps) if taps is not None else taps_for_width(width)
        self.tap_mask = feedback_mask(width, self.taps)
        self.full_mask = (1 << width) - 1
        if not (0 < seed <= self.full_mask):
            raise ValueError(f"seed must be a nonzero {width}-bit value")
        self.seed = seed
        self.state = seed

    @property
    def period(self) -> int:
        """Sequence period for maximal-length taps: ``2^width − 1``."""
        return self.full_mask

    def _step(self, state: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self) -> None:
        self.state = self.seed

    def warm_up(self, steps: int | None = None) -> None:
        """Advance past the low-weight-seed transient (default: 8·width
        clocks, enough to fill the register with sequence history)."""
        self.jump(steps if steps is not None else 8 * self.width)

    def next_word(self) -> int:
        """Advance one clock and return the new state word."""
        self.state = self._step(self.state)
        return self.state

    def next_fraction(self) -> float:
        """The paper's view of the state: a fraction ``0 < x < 1``.

        A virtual binary point sits left of the MSB, so the word ``s``
        denotes ``s / 2^m``.
        """
        return self.next_word() / (1 << self.width)

    def words(self, count: int) -> np.ndarray:
        """Generate ``count`` successive state words.

        Machine-word registers come back in the smallest unsigned tier
        that holds them (``uint8``/``uint32``/``uint64`` — the same
        tiers the compiled-simulation boundary uses), so downstream
        NumPy consumers (:mod:`repro.rng.scaled`, :mod:`repro.analysis`)
        stay vectorised.  Only widths above 64 bits fall back to an
        object array of Python bigints.
        """
        if self.width <= 8:
            dtype: Any = np.uint8
        elif self.width <= 32:
            dtype = np.uint32
        elif self.width <= 64:
            dtype = np.uint64
        else:
            dtype = object
        out = np.empty(count, dtype=dtype)
        s = self.state
        step = self._step
        for i in range(count):
            s = step(s)
            out[i] = s
        self.state = s
        return out

    def iter_words(self) -> Iterator[int]:
        """Endless stream of state words."""
        while True:
            yield self.next_word()

    # -- jump-ahead ---------------------------------------------------- #

    def _transition_columns(self) -> list[int]:
        """Column images of the one-step map: ``col[i] = step(e_i)``.

        Valid because the step is GF(2)-linear (pure XOR/shift network).
        """
        return [self._step(1 << i) for i in range(self.width)]

    @staticmethod
    def _apply_columns(cols: list[int], state: int) -> int:
        out = 0
        while state:
            low = state & -state
            out ^= cols[low.bit_length() - 1]
            state ^= low
        return out

    def jump(self, steps: int) -> int:
        """Advance ``steps`` clocks in O(m³ log steps); returns new state."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        cols = self._transition_columns()
        result = self.state
        k = steps
        while k:
            if k & 1:
                result = self._apply_columns(cols, result)
            k >>= 1
            if k:
                cols = [self._apply_columns(cols, c) for c in cols]
        self.state = result
        return result

    def spawn_substreams(self, count: int, total_draws: int) -> list["LFSRBase"]:
        """Split the stream into ``count`` disjoint leap-blocks.

        Substream ``j`` starts ``j * ceil(total_draws / count)`` steps into
        this generator's future, so workers drawing at most that many words
        never overlap — the classic block-splitting scheme for parallel
        Monte-Carlo.

        The parent itself is advanced past the last block (``count ·
        ceil(total_draws / count)`` steps): substream 0 begins at what was
        the parent's current state, so a parent left in place and still
        drawing would silently replay substream 0's window — the classic
        block-splitting hazard.  After this call the parent's next draws
        are disjoint from every substream's window, parent included.
        """
        if count < 1:
            raise ValueError("count must be positive")
        block = -(-total_draws // count)
        streams = []
        for j in range(count):
            s = type(self)(self.width, self.taps, seed=self.seed)
            s.state = self.state
            s.jump(j * block)
            streams.append(s)
        # move the parent past every handed-out block so continued parent
        # draws cannot overlap substream 0 (or any other substream)
        self.jump(count * block)
        return streams


class FibonacciLFSR(LFSRBase):
    """Many-to-one LFSR: XOR of tapped bits shifts in at bit 0."""

    def _step(self, state: int) -> int:
        fb = _parity(state & self.tap_mask)
        return ((state << 1) & self.full_mask) | fb

    def words(self, count: int) -> np.ndarray:
        """Vectorised batch generation, bit-exact with the scalar loop.

        The register is a sliding window over the m-sequence bit stream
        ``b``: state_t bit j is ``b[m−1+t−j]``, and the feedback shifted
        in at step t satisfies the order-m linear recurrence

            b[k] = XOR over tap positions p of b[k − p]

        (tap position p taps register bit p−1, one extra clock of
        latency).  So instead of clocking the register ``count`` times
        in Python, generate the bit stream in NumPy chunks of the
        smallest tap lag — every value a chunk reads is already final —
        then rebuild the ``count`` state words as m shifted slices.
        Population-scale consumers (:mod:`repro.analysis.stream`) draw
        millions of words; the scalar loop was their bottleneck, not
        the gate-level engines.
        """
        if count <= 0 or self.width > 64:
            return super().words(count)
        m = self.width
        lags = sorted(self.taps)
        total = m + count
        bits = np.empty(total, dtype=np.uint8)
        state = self.state
        for i in range(m):  # bits[i] = state bit (m−1−i): oldest first
            bits[i] = (state >> (m - 1 - i)) & 1
        if lags[0] == 1:
            # a lag-1 term makes b[k] depend on b[k−1]; fold it out with
            # a running-XOR prefix and chunk on the next-smallest lag
            rest = lags[1:]
            chunk = rest[0]
            k = m
            while k < total:
                end = min(k + chunk, total)
                seg = bits[k - rest[0] : end - rest[0]].copy()
                for lag in rest[1:]:
                    seg ^= bits[k - lag : end - lag]
                np.bitwise_xor.accumulate(seg, out=seg)
                seg ^= bits[k - 1]
                bits[k:end] = seg
                k = end
        else:
            chunk = lags[0]
            k = m
            while k < total:
                end = min(k + chunk, total)
                seg = bits[k - lags[0] : end - lags[0]].copy()
                for lag in lags[1:]:
                    seg ^= bits[k - lag : end - lag]
                bits[k:end] = seg
                k = end
        states = np.zeros(count, dtype=np.uint64)
        for j in range(m):  # state_t bit j = bits[(m−1−j) + t], t = 1..count
            states |= bits[m - j : m - j + count].astype(np.uint64) << np.uint64(j)
        self.state = int(states[-1])
        if m <= 8:
            return states.astype(np.uint8)
        if m <= 32:
            return states.astype(np.uint32)
        return states


class GaloisLFSR(LFSRBase):
    """One-to-many LFSR: the bit shifted out is XORed into the taps.

    Uses the reciprocal arrangement of the same primitive polynomial, so
    the period is identical to the Fibonacci form.
    """

    def _step(self, state: int) -> int:
        lsb = state & 1
        state >>= 1
        if lsb:
            # The tap mask includes bit width−1 (the width position is
            # always tapped), which supplies the new MSB after the shift.
            state ^= self.tap_mask
        return state


def add_lfsr(
    nl: Netlist,
    width: int,
    taps: tuple[int, ...] | None = None,
    seed: int = 1,
    name: str = "lfsr",
) -> Bus:
    """Instantiate a Fibonacci LFSR inside ``nl``; returns the state bus.

    The structure is ``width`` flip-flops plus an XOR feedback tree over
    the tapped Q outputs — exactly the per-stage random source counted in
    Table IV.
    """
    taps = tuple(taps) if taps is not None else taps_for_width(width)
    if not (0 < seed < (1 << width)):
        raise ValueError("seed must be a nonzero width-bit value")
    # Registers must exist before the feedback references them.  Allocate Q
    # wires first, then wire each D; the Netlist API creates Q at register
    # time, so build a feedback net from placeholder BUFs is not possible —
    # instead create registers with a two-phase trick: Q wires are leaves,
    # and D assignment happens through the registers list.
    q_wires = []
    for i in range(width):
        q = nl._new_wire(Op.REG, (), name=f"{name}.q[{i}]")
        q_wires.append(q)
    fb = None
    for p in taps:
        w = q_wires[p - 1]
        fb = w if fb is None else nl.gate(Op.XOR, fb, w)
    assert fb is not None
    # state' = (state << 1) | fb
    d_wires = [fb] + q_wires[:-1]
    from repro.hdl.netlist import Register

    for i, (q, d) in enumerate(zip(q_wires, d_wires)):
        nl.registers.append(Register(q=q, d=d, init=bool((seed >> i) & 1)))
    return Bus(q_wires)


def build_lfsr_netlist(
    width: int, taps: tuple[int, ...] | None = None, seed: int = 1
) -> Netlist:
    """Standalone LFSR circuit with its state as the only output."""
    nl = Netlist(name=f"lfsr{width}")
    state = add_lfsr(nl, width, taps=taps, seed=seed)
    nl.output("state", state)
    return nl
