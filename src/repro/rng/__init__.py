"""Pseudo-random number substrate.

The paper's random permutation generators are driven by hardware linear
feedback shift registers (LFSRs).  This package provides:

* :mod:`repro.rng.taps` — maximal-length feedback tap tables for register
  widths 2–64 (the classic XAPP052 set);
* :mod:`repro.rng.lfsr` — bit-exact Fibonacci and Galois LFSR models with
  O(log k) jump-ahead (GF(2) matrix exponentiation) for carving a single
  hardware stream into independent parallel substreams, plus a builder that
  emits the equivalent gate-level netlist for resource accounting;
* :mod:`repro.rng.scaled` — the Fig.-2 scaled random-integer generator
  (``i = (k·x) >> m`` via a shift-and-add multiplier) together with the
  *exact* pigeonhole bias analysis the paper sketches (7 of 24 integers
  twice as likely at ``m = 5``, ~0.1 % imbalance at ``m = 31``);
* :mod:`repro.rng.source` — index sources (counter / LFSR / explicit list)
  feeding the converter front-end.
"""

from repro.rng.taps import MAXIMAL_TAPS, taps_for_width, feedback_mask
from repro.rng.lfsr import FibonacciLFSR, GaloisLFSR, build_lfsr_netlist, dense_seed
from repro.rng.scaled import (
    ScaledRandomInteger,
    scale_word,
    bias_profile,
    BiasReport,
    build_scaled_netlist,
)
from repro.rng.source import CounterSource, ListSource, LFSRIndexSource

__all__ = [
    "MAXIMAL_TAPS",
    "taps_for_width",
    "feedback_mask",
    "FibonacciLFSR",
    "GaloisLFSR",
    "build_lfsr_netlist",
    "dense_seed",
    "ScaledRandomInteger",
    "scale_word",
    "bias_profile",
    "BiasReport",
    "build_scaled_netlist",
    "CounterSource",
    "ListSource",
    "LFSRIndexSource",
]
