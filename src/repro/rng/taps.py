"""Maximal-length LFSR feedback taps.

Tap positions (1-based, counting from the most significant stage) for
maximal-length sequences, i.e. primitive feedback polynomials over GF(2).
This is the standard table circulated with Xilinx application note
XAPP052, which is exactly the source a reconfigurable-computing design like
the paper's would have used.  An ``m``-bit maximal LFSR cycles through all
``2^m − 1`` nonzero states — the property the paper leans on when it notes
that "the LFSR random number generator generates all 31 5-bit numbers
except 0".
"""

from __future__ import annotations

__all__ = ["MAXIMAL_TAPS", "taps_for_width", "feedback_mask"]

#: width -> tap positions (1-based, 1 = LSB here; see :func:`feedback_mask`).
#: Positions follow the XAPP052 convention where the width itself is always
#: a tap (the output stage feeds back).
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
    33: (33, 20),
    34: (34, 27, 2, 1),
    35: (35, 33),
    36: (36, 25),
    37: (37, 5, 4, 3, 2, 1),
    38: (38, 6, 5, 1),
    39: (39, 35),
    40: (40, 38, 21, 19),
    41: (41, 38),
    42: (42, 41, 20, 19),
    43: (43, 42, 38, 37),
    44: (44, 43, 18, 17),
    45: (45, 44, 42, 41),
    46: (46, 45, 26, 25),
    47: (47, 42),
    48: (48, 47, 21, 20),
    49: (49, 40),
    50: (50, 49, 24, 23),
    51: (51, 50, 36, 35),
    52: (52, 49),
    53: (53, 52, 38, 37),
    54: (54, 53, 18, 17),
    55: (55, 31),
    56: (56, 55, 35, 34),
    57: (57, 50),
    58: (58, 39),
    59: (59, 58, 38, 37),
    60: (60, 59),
    61: (61, 60, 46, 45),
    62: (62, 61, 6, 5),
    63: (63, 62),
    64: (64, 63, 61, 60),
}


def taps_for_width(width: int) -> tuple[int, ...]:
    """The default maximal-length taps for ``width``-bit registers."""
    try:
        return MAXIMAL_TAPS[width]
    except KeyError:
        raise ValueError(f"no maximal-length taps tabulated for width {width}") from None


def feedback_mask(width: int, taps: tuple[int, ...] | None = None) -> int:
    """Bit mask of the tapped stages (tap position p → bit p−1)."""
    taps = taps if taps is not None else taps_for_width(width)
    mask = 0
    for p in taps:
        if not (1 <= p <= width):
            raise ValueError(f"tap {p} outside 1..{width}")
        mask |= 1 << (p - 1)
    return mask
