"""The Fig.-2 scaled random-integer generator and its bias analysis.

The block converts an ``m``-bit LFSR word ``x`` (read as a fraction
``0 < x/2^m < 1``) into an integer ``i`` uniform-ish on ``0..k−1``::

    i = floor(k * x / 2^m)          # multiply, right-shift, truncate

The multiplier is a shift-and-add network because ``k`` is a compile-time
constant (``k = n!`` for an index generator, or the number of swap choices
for a Knuth-shuffle stage).

Because a maximal LFSR emits every word in ``1..2^m − 1`` exactly once per
period, the distribution of ``i`` over one period is *exactly* computable —
no sampling required.  :func:`bias_profile` returns those closed-form
counts; the paper's two worked examples fall out directly:

* ``m = 5, k = 24``: 31 words over 24 bins — 7 integers occur twice, 17
  once, a 2× probability ratio ("seven of the random integers are
  generated from two random numbers, while 17 are generated from one");
* ``m = 31, k = 24``: the ratio drops to within ~10⁻⁵ % of uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hdl.netlist import Netlist
from repro.hdl.components import shift_add_mult_const, truncate_high, zero_extend
from repro.rng.lfsr import FibonacciLFSR, LFSRBase, add_lfsr, dense_seed

__all__ = [
    "scale_word",
    "ScaledRandomInteger",
    "BiasReport",
    "bias_profile",
    "empirical_bias",
    "build_scaled_netlist",
]


def scale_word(x: int, k: int, m: int) -> int:
    """Map one ``m``-bit word to ``floor(k·x / 2^m)`` ∈ ``0..k−1``."""
    if not (0 <= x < (1 << m)):
        raise ValueError(f"x={x} is not an {m}-bit word")
    return (k * x) >> m


@dataclass(frozen=True)
class BiasReport:
    """Exact per-integer occurrence counts over one full LFSR period."""

    k: int
    m: int
    counts: tuple[int, ...]  #: counts[i] = #states mapping to integer i

    @property
    def period(self) -> int:
        return (1 << self.m) - 1

    @property
    def min_count(self) -> int:
        return min(self.counts)

    @property
    def max_count(self) -> int:
        return max(self.counts)

    @property
    def ratio(self) -> float:
        """Max/min probability ratio (the paper's pigeonhole headline)."""
        if self.min_count == 0:
            return float("inf")
        return self.max_count / self.min_count

    @property
    def max_relative_error(self) -> float:
        """Largest relative deviation of P(i) from the ideal 1/k."""
        ideal = self.period / self.k
        return max(abs(c - ideal) for c in self.counts) / ideal

    def histogram(self) -> np.ndarray:
        return np.asarray(self.counts, dtype=np.int64)


def bias_profile(k: int, m: int) -> BiasReport:
    """Closed-form output distribution of the Fig.-2 block.

    Integer ``i`` is produced by the words ``x`` with
    ``ceil(i·2^m / k) ≤ x ≤ ceil((i+1)·2^m / k) − 1`` intersected with the
    LFSR's state set ``1..2^m − 1`` (zero never occurs).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if m < 1:
        raise ValueError("m must be positive")
    top = 1 << m
    counts = []
    for i in range(k):
        lo = -(-(i * top) // k)  # ceil
        hi = -(-((i + 1) * top) // k) - 1
        lo = max(lo, 1)
        hi = min(hi, top - 1)
        counts.append(max(0, hi - lo + 1))
    if sum(counts) != top - 1:  # pragma: no cover - closed-form invariant
        raise AssertionError(
            f"bias_profile(k={k}, m={m}) lost states: "
            f"{sum(counts)} != {top - 1}"
        )
    return BiasReport(k=k, m=m, counts=tuple(counts))


def empirical_bias(k: int, lfsr: LFSRBase) -> BiasReport:
    """The Fig.-2 output histogram *counted*, not computed.

    Drives ``lfsr`` through one full period from its current state and
    tallies ``floor(k·x / 2^m)`` for every emitted word.  A maximal LFSR
    visits each nonzero state exactly once per period, so this must
    equal :func:`bias_profile` bin for bin — the property test in
    ``tests/rng/test_scaled.py`` holds the closed-form interval
    arithmetic (including the excluded all-zeros state) to exactly that.
    """
    if k < 1:
        raise ValueError("k must be positive")
    m = lfsr.width
    counts = [0] * k
    for x in map(int, lfsr.words(lfsr.period)):
        counts[(k * x) >> m] += 1
    return BiasReport(k=k, m=m, counts=tuple(counts))


class ScaledRandomInteger:
    """A software-exact model of the Fig.-2 generator.

    Wraps an LFSR and applies the constant multiply + truncate on each
    draw.  The default LFSR is the 31-bit Fibonacci register the paper
    uses per Knuth-shuffle stage.
    """

    def __init__(
        self, k: int, lfsr: LFSRBase | None = None, m: int = 31, seed: int | None = None
    ):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        if lfsr is None:
            # Default to a dense seed: low-weight seeds sit in a biased
            # stretch of the low-weight-polynomial m-sequence (see
            # repro.rng.lfsr.dense_seed).
            lfsr = FibonacciLFSR(m, seed=seed if seed is not None else dense_seed(m))
        self.lfsr = lfsr
        self.m = self.lfsr.width

    def next_int(self) -> int:
        """Draw one integer in ``0..k−1``."""
        return scale_word(self.lfsr.next_word(), self.k, self.m)

    def ints(self, count: int) -> np.ndarray:
        """Draw ``count`` integers (vectorised over the LFSR word batch)."""
        words = self.lfsr.words(count)
        k = self.k
        shift = self.m
        if words.dtype != object and k.bit_length() + shift <= 64:
            # the product k·x fits a uint64 word: one vectorised
            # multiply-shift over the whole batch
            scaled = (words.astype(np.uint64) * np.uint64(k)) >> np.uint64(shift)
            return scaled.astype(np.int64)
        return np.fromiter(
            ((k * int(w)) >> shift for w in words), dtype=np.int64, count=count
        )

    def bias(self) -> BiasReport:
        """The exact long-run distribution of this generator."""
        return bias_profile(self.k, self.m)


def build_scaled_netlist(m: int, k: int, seed: int = 1) -> Netlist:
    """Gate-level Fig. 2: LFSR → shift-and-add ``k·x`` → truncate.

    The output bus carries the integer ``i`` (``ceil(log2 k)`` bits); used
    for the per-stage RNG resource accounting behind Table IV.
    """
    nl = Netlist(name=f"scaled_rng_m{m}_k{k}")
    state = add_lfsr(nl, m, seed=seed)
    product = shift_add_mult_const(nl, state, k)
    integer = truncate_high(nl, product, m)
    width = max(1, (k - 1).bit_length())
    if integer.width > width:
        integer = integer[:width]
    else:
        integer = zero_extend(nl, integer, width)
    nl.output("i", integer)
    return nl
