"""Export netlists to synthesizable Verilog and simulations to VCD.

The paper's artefact was "a Verilog program … on an SRC-6 reconfigurable
computer"; an open-source release of the system therefore ships a path
back to real hardware.  :func:`to_verilog` emits a flat structural module
(`assign` per gate, one always-block for the registers) that any
synthesis tool accepts, and :class:`VCDWriter` dumps cycle-accurate
simulation traces in the standard Value Change Dump format for waveform
viewers (GTKWave etc.).
"""

from __future__ import annotations

import io
from typing import Mapping

from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist

__all__ = ["to_verilog", "VCDWriter"]

_BINARY_FMT = {
    Op.AND: "{a} & {b}",
    Op.OR: "{a} | {b}",
    Op.XOR: "{a} ^ {b}",
    Op.NAND: "~({a} & {b})",
    Op.NOR: "~({a} | {b})",
    Op.XNOR: "~({a} ^ {b})",
    Op.ANDN: "{a} & ~{b}",
    Op.ORN: "{a} | ~{b}",
}


def _wname(w: int) -> str:
    return f"w{w}"


def to_verilog(nl: Netlist, module_name: str | None = None) -> str:
    """Render the netlist as a flat structural Verilog-2001 module.

    Ports: every input/output bus, plus ``clk`` when registers exist.
    Gates become continuous assignments; registers a single clocked
    always-block with their declared init values applied at declaration
    (FPGA-style register initialisation).
    """
    nl.check()
    name = module_name or nl.name.replace("-", "_")
    out = io.StringIO()

    ports = []
    if nl.registers:
        ports.append("clk")
    ports += [f"in_{p}" for p in nl.inputs]
    ports += [f"out_{p}" for p in nl.outputs]
    out.write(f"module {name}({', '.join(ports)});\n")
    if nl.registers:
        out.write("  input clk;\n")
    for pname, bus in nl.inputs.items():
        out.write(f"  input [{bus.width - 1}:0] in_{pname};\n")
    for pname, bus in nl.outputs.items():
        out.write(f"  output [{bus.width - 1}:0] out_{pname};\n")
    out.write("\n")

    live = nl.live_wires()
    reg_wires = {r.q for r in nl.registers}
    for w, g in enumerate(nl.gates):
        if w not in live:
            continue
        if g.op is Op.REG:
            init = next(r.init for r in nl.registers if r.q == w)
            out.write(f"  reg {_wname(w)} = 1'b{int(init)};\n")
        elif g.op not in (Op.INPUT,):
            out.write(f"  wire {_wname(w)};\n")
    out.write("\n")

    # input bit aliases
    for pname, bus in nl.inputs.items():
        for i, w in enumerate(bus):
            if w in live:
                out.write(f"  wire {_wname(w)} = in_{pname}[{i}];\n")

    for w, g in enumerate(nl.gates):
        if w not in live:
            continue
        if g.op in (Op.INPUT, Op.REG):
            continue
        if g.op is Op.CONST0:
            out.write(f"  assign {_wname(w)} = 1'b0;\n")
        elif g.op is Op.CONST1:
            out.write(f"  assign {_wname(w)} = 1'b1;\n")
        elif g.op is Op.BUF:
            out.write(f"  assign {_wname(w)} = {_wname(g.fanin[0])};\n")
        elif g.op is Op.NOT:
            out.write(f"  assign {_wname(w)} = ~{_wname(g.fanin[0])};\n")
        elif g.op is Op.MUX:
            s, a, b = (_wname(f) for f in g.fanin)
            out.write(f"  assign {_wname(w)} = {s} ? {b} : {a};\n")
        else:
            expr = _BINARY_FMT[g.op].format(a=_wname(g.fanin[0]), b=_wname(g.fanin[1]))
            out.write(f"  assign {_wname(w)} = {expr};\n")

    if nl.registers:
        out.write("\n  always @(posedge clk) begin\n")
        for r in nl.registers:
            if r.q in live:
                out.write(f"    {_wname(r.q)} <= {_wname(r.d)};\n")
        out.write("  end\n")

    out.write("\n")
    for pname, bus in nl.outputs.items():
        bits = ", ".join(_wname(w) for w in reversed(list(bus)))
        out.write(f"  assign out_{pname} = {{{bits}}};\n")
    out.write("endmodule\n")
    return out.getvalue()


class VCDWriter:
    """Value Change Dump writer for cycle-accurate traces.

    Record word-level bus values per clock with :meth:`sample`; the dump
    is standard VCD loadable in GTKWave.  Time unit: one step per clock.
    """

    def __init__(self, signals: Mapping[str, int], timescale: str = "1ns") -> None:
        """``signals`` maps signal name → bit width."""
        if not signals:
            raise ValueError("at least one signal required")
        self.signals = dict(signals)
        self.timescale = timescale
        self._ids: dict[str, str] = {}
        for i, name in enumerate(self.signals):
            self._ids[name] = self._short_id(i)
        self._changes: list[tuple[int, str, int]] = []
        self._last: dict[str, int | None] = {n: None for n in self.signals}
        self._time = 0

    @staticmethod
    def _short_id(i: int) -> str:
        chars = "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        out = ""
        i += 1
        while i:
            i, rem = divmod(i - 1, len(chars))
            out = chars[rem] + out
        return out

    def sample(self, values: Mapping[str, int]) -> None:
        """Record one clock's worth of signal values; advances time."""
        for name, value in values.items():
            if name not in self.signals:
                raise ValueError(f"unknown signal {name!r}")
            v = int(value)
            if self._last[name] != v:
                self._changes.append((self._time, name, v))
                self._last[name] = v
        self._time += 1

    @property
    def cycles(self) -> int:
        return self._time

    def render(self) -> str:
        """The complete VCD text."""
        out = io.StringIO()
        out.write(f"$timescale {self.timescale} $end\n")
        out.write("$scope module top $end\n")
        for name, width in self.signals.items():
            out.write(f"$var wire {width} {self._ids[name]} {name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        current = -1
        for time, name, value in self._changes:
            if time != current:
                out.write(f"#{time}\n")
                current = time
            width = self.signals[name]
            if width == 1:
                out.write(f"{value & 1}{self._ids[name]}\n")
            else:
                out.write(f"b{value:b} {self._ids[name]}\n")
        out.write(f"#{self._time}\n")
        return out.getvalue()

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.render())
