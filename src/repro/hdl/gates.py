"""Primitive gate library.

The gate set mirrors what a synthesis front-end hands to an FPGA technology
mapper: constants, buffers/inverters, the standard two-input Boolean
functions and a 2:1 multiplexer.  Every gate is evaluated on NumPy boolean
arrays so a single pass through the netlist simulates an arbitrary batch of
input vectors (one array lane per vector).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Op", "GATE_ARITY", "evaluate_op"]


class Op(enum.Enum):
    """Primitive gate operations.

    ``MUX`` follows the convention ``MUX(sel, a, b) = b if sel else a``.
    """

    CONST0 = "const0"
    CONST1 = "const1"
    INPUT = "input"  # primary input; value supplied externally
    REG = "reg"  # register output (Q); value supplied by sequential state
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    ANDN = "andn"  # a AND (NOT b)
    ORN = "orn"  # a OR (NOT b)
    MUX = "mux"


#: Number of data fanins for each op.  ``INPUT``/``REG``/constants have none.
GATE_ARITY: dict[Op, int] = {
    Op.CONST0: 0,
    Op.CONST1: 0,
    Op.INPUT: 0,
    Op.REG: 0,
    Op.BUF: 1,
    Op.NOT: 1,
    Op.AND: 2,
    Op.OR: 2,
    Op.XOR: 2,
    Op.NAND: 2,
    Op.NOR: 2,
    Op.XNOR: 2,
    Op.ANDN: 2,
    Op.ORN: 2,
    Op.MUX: 3,
}


def evaluate_op(op: Op, args: tuple[np.ndarray, ...]) -> np.ndarray:
    """Evaluate a single gate on boolean array operands.

    Parameters
    ----------
    op:
        Gate operation.  ``INPUT`` and ``REG`` cannot be evaluated here;
        their values come from the simulation environment.
    args:
        Operand arrays, all of identical shape.

    Returns
    -------
    numpy.ndarray
        Boolean array of the same shape as the operands.
    """
    if op is Op.BUF:
        return args[0].copy()
    if op is Op.NOT:
        return ~args[0]
    if op is Op.AND:
        return args[0] & args[1]
    if op is Op.OR:
        return args[0] | args[1]
    if op is Op.XOR:
        return args[0] ^ args[1]
    if op is Op.NAND:
        return ~(args[0] & args[1])
    if op is Op.NOR:
        return ~(args[0] | args[1])
    if op is Op.XNOR:
        return ~(args[0] ^ args[1])
    if op is Op.ANDN:
        return args[0] & ~args[1]
    if op is Op.ORN:
        return args[0] | ~args[1]
    if op is Op.MUX:
        sel, a, b = args
        return np.where(sel, b, a)
    raise ValueError(f"op {op} has no combinational evaluation")
