"""Equivalence checking between netlists and reference functions.

The reproduction leans on a strict discipline: every gate-level circuit has
an arithmetic reference model, and the two are proven equal — exhaustively
for small input spaces, by dense random sampling otherwise.  This is the
software analogue of the testbench the authors would have run against their
Verilog.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.hdl.netlist import Netlist
from repro.hdl.simulator import CombinationalSimulator

__all__ = [
    "exhaustive_check",
    "random_check",
    "assert_equivalent",
    "sequential_check",
    "random_equivalence_check",
]

#: Reference model: maps a dict of input words to a dict of output words.
Reference = Callable[[Mapping[str, int]], Mapping[str, int]]


def _input_space(netlist: Netlist) -> int:
    return sum(bus.width for bus in netlist.inputs.values())


def _compare_batch(
    netlist: Netlist,
    reference: Reference,
    batches: Mapping[str, Sequence[int]],
    batch_size: int,
) -> None:
    sim = CombinationalSimulator(netlist)
    got = sim.run(batches)
    for i in range(batch_size):
        point = {name: int(vals[i]) for name, vals in batches.items()}
        want = reference(point)
        for out_name, want_val in want.items():
            got_val = int(got[out_name][i])
            if got_val != want_val:
                raise AssertionError(
                    f"netlist {netlist.name!r} disagrees with reference at "
                    f"{point}: output {out_name!r} = {got_val}, expected {want_val}"
                )


def exhaustive_check(netlist: Netlist, reference: Reference) -> int:
    """Compare against the reference on *every* input combination.

    Returns the number of vectors checked.  Refuses input spaces larger
    than 2^20 — use :func:`random_check` there.
    """
    total_bits = _input_space(netlist)
    if total_bits > 20:
        raise ValueError(f"input space 2^{total_bits} too large for exhaustive check")
    names = list(netlist.inputs)
    widths = [netlist.inputs[n].width for n in names]
    ranges = [range(1 << w) for w in widths]
    points = list(itertools.product(*ranges))
    batches = {n: [p[i] for p in points] for i, n in enumerate(names)}
    _compare_batch(netlist, reference, batches, len(points))
    return len(points)


def random_check(
    netlist: Netlist,
    reference: Reference,
    samples: int = 1000,
    rng: np.random.Generator | None = None,
    domains: Mapping[str, int] | None = None,
) -> int:
    """Compare on ``samples`` random vectors.

    ``domains`` optionally caps an input below its full 2^width range —
    e.g. the converter's index input is only defined for ``index < n!``.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    batches: dict[str, list[int]] = {}
    for name, bus in netlist.inputs.items():
        hi = (domains or {}).get(name, 1 << bus.width)
        # use Python randints through numpy for arbitrary width
        batches[name] = [
            int.from_bytes(rng.bytes((hi.bit_length() + 7) // 8 or 1), "little") % hi
            if hi > 0
            else 0
            for _ in range(samples)
        ]
    _compare_batch(netlist, reference, batches, samples)
    return samples


def assert_equivalent(
    netlist: Netlist,
    reference: Reference,
    samples: int = 1000,
    rng: np.random.Generator | None = None,
    domains: Mapping[str, int] | None = None,
) -> int:
    """Exhaustive when feasible, otherwise random; returns vectors checked."""
    if _input_space(netlist) <= 16 and not domains:
        return exhaustive_check(netlist, reference)
    return random_check(netlist, reference, samples=samples, rng=rng, domains=domains)


def _random_words(rng: np.random.Generator, width: int, count: int) -> list[int]:
    """``count`` uniform integers of ``width`` bits (arbitrary width)."""
    nbytes = (width + 7) // 8 or 1
    mask = (1 << width) - 1
    return [int.from_bytes(rng.bytes(nbytes), "little") & mask for _ in range(count)]


def random_equivalence_check(
    a: Netlist,
    b: Netlist,
    samples: int = 256,
    cycles: int = 16,
    rng: np.random.Generator | None = None,
    engine: str = "auto",
) -> int:
    """Netlist-vs-netlist miter by dense random simulation.

    The workhorse behind checked-mode pass pipelines when the input
    space outgrows BDD proof (:func:`repro.hdl.model_check.
    prove_equivalent`).  Both netlists must expose identical port
    signatures.  Combinational pairs are compared on one batch of
    ``samples`` random vectors; sequential pairs are stepped from reset
    for ``cycles`` clocks with ``samples`` independent random lanes and
    compared on *every* cycle — so register-retiming bugs that only
    surface after the pipeline fills are caught too.

    ``engine`` selects the simulation backend through the registry
    (any name in :data:`repro.hdl.engine.BACKENDS` — ``"auto"``,
    ``"interp"``, ``"compiled"``, ``"vector"``); the engines are
    bit-identical, so the choice affects wall time only.

    Returns the number of compared (vector, cycle) points; raises
    :class:`AssertionError` on the first disagreement.
    """
    sig_a = [(n, bus.width) for n, bus in a.inputs.items()]
    sig_b = [(n, bus.width) for n, bus in b.inputs.items()]
    if sig_a != sig_b:
        raise ValueError(f"input signatures differ: {sig_a} vs {sig_b}")
    if set(a.outputs) != set(b.outputs):
        raise ValueError("output names differ")
    rng = rng if rng is not None else np.random.default_rng(0)

    if not a.registers and not b.registers:
        batches = {
            name: _random_words(rng, bus.width, samples)
            for name, bus in a.inputs.items()
        }
        sim_a = CombinationalSimulator(a, backend=engine)
        sim_b = CombinationalSimulator(b, backend=engine)
        got_a, got_b = sim_a.run(batches), sim_b.run(batches)
        for name in a.outputs:
            va = [int(v) for v in got_a[name]]
            vb = [int(v) for v in got_b[name]]
            if va != vb:
                i = next(i for i, (x, y) in enumerate(zip(va, vb)) if x != y)
                point = {k: batches[k][i] for k in batches}
                raise AssertionError(
                    f"netlists {a.name!r} and {b.name!r} disagree at {point}: "
                    f"output {name!r} = {va[i]} vs {vb[i]}"
                )
        return samples

    from repro.hdl.simulator import SequentialSimulator

    seq_a = SequentialSimulator(a, batch=samples, backend=engine)
    seq_b = SequentialSimulator(b, batch=samples, backend=engine)
    compared = 0
    for cycle in range(cycles):
        step_inputs = {
            name: _random_words(rng, bus.width, samples)
            for name, bus in a.inputs.items()
        }
        got_a, got_b = seq_a.step(step_inputs), seq_b.step(step_inputs)
        for name in a.outputs:
            va = [int(v) for v in got_a[name]]
            vb = [int(v) for v in got_b[name]]
            if va != vb:
                raise AssertionError(
                    f"netlists {a.name!r} and {b.name!r} disagree at cycle "
                    f"{cycle}: output {name!r} = {va[:4]}... vs {vb[:4]}..."
                )
        compared += samples
    return compared


def sequential_check(
    netlist: Netlist,
    reference_step: Callable[[Mapping[str, int]], Mapping[str, int]],
    input_stream: Sequence[Mapping[str, int]],
    skip: int = 0,
) -> int:
    """Cycle-by-cycle comparison of a clocked netlist against a model.

    ``reference_step`` is a stateful callable invoked once per clock with
    that cycle's inputs; its outputs are compared to the netlist's (the
    first ``skip`` cycles — pipeline fill, warm-up — are not compared).
    Returns the number of compared cycles.
    """
    from repro.hdl.simulator import SequentialSimulator

    sim = SequentialSimulator(netlist, batch=1)
    compared = 0
    for cycle, inputs in enumerate(input_stream):
        got = sim.step(inputs)
        want = reference_step(inputs)
        if cycle < skip:
            continue
        for name, want_val in want.items():
            got_val = int(got[name][0])
            if got_val != int(want_val):
                raise AssertionError(
                    f"cycle {cycle}: output {name!r} = {got_val}, "
                    f"expected {want_val} (netlist {netlist.name!r})"
                )
        compared += 1
    return compared
