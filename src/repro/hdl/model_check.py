"""Formal (BDD-based) verification of combinational netlists.

Simulation-based checking (:mod:`repro.hdl.verify`) samples the input
space; this module *proves* properties by symbolic evaluation: every wire
gets a reduced-ordered BDD over the primary-input bits, and because ROBDDs
are canonical, functional equality is node-id equality — a complete
equivalence check for any input width the BDDs can absorb (≲ 20 input
bits here, which covers the converter up to n = 8's 16-bit index).

It is also a neat self-application: the BDD package was built as the
paper's §I *workload* (variable-ordering search) and doubles as the
verification engine for the paper's own circuit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.bdd import BDD


def _bdd_class() -> "type[BDD]":
    # Imported lazily: repro.apps pulls in the whole application layer,
    # which itself imports repro.hdl — a cycle at module-import time.
    from repro.apps.bdd import BDD

    return BDD

__all__ = [
    "input_variable_map",
    "netlist_to_bdds",
    "prove_equivalent",
    "prove_constant_output",
    "find_distinguishing_input",
]


def input_variable_map(nl: Netlist) -> dict[int, int]:
    """Assign a BDD variable index to every primary-input wire.

    Variables are numbered in input-declaration order, LSB first, so two
    netlists with identical port signatures share a numbering.
    """
    mapping: dict[int, int] = {}
    var = 0
    for name in nl.inputs:
        for wire in nl.inputs[name]:
            mapping[wire] = var
            var += 1
    return mapping


def netlist_to_bdds(nl: Netlist, mgr: "BDD | None" = None) -> tuple["BDD", dict[str, list[int]]]:
    """Symbolically evaluate a combinational netlist.

    Returns the manager and, per output bus, the list of BDD roots (LSB
    first).  Sequential netlists are rejected — unroll or cut registers
    first.
    """
    nl.check()
    if nl.registers:
        raise ValueError("model checking supports combinational netlists only")
    var_of = input_variable_map(nl)
    n_vars = len(var_of)
    BDD = _bdd_class()
    mgr = mgr if mgr is not None else BDD(n_vars)
    if mgr.n_vars < n_vars:
        raise ValueError(f"manager has {mgr.n_vars} variables, need {n_vars}")

    node: dict[int, int] = {}
    for w, g in enumerate(nl.gates):
        if g.op is Op.INPUT:
            node[w] = mgr.variable(var_of[w])
        elif g.op is Op.CONST0:
            node[w] = BDD.FALSE
        elif g.op is Op.CONST1:
            node[w] = BDD.TRUE  # noqa: F821 - BDD bound above
        elif g.op is Op.BUF:
            node[w] = node[g.fanin[0]]
        elif g.op is Op.NOT:
            node[w] = mgr.negate(node[g.fanin[0]])
        elif g.op is Op.MUX:
            s, a, b = (node[f] for f in g.fanin)
            node[w] = mgr.apply(
                "or", mgr.apply("and", s, b), mgr.apply("and", mgr.negate(s), a)
            )
        elif g.op in (Op.AND, Op.OR, Op.XOR):
            node[w] = mgr.apply(g.op.value, node[g.fanin[0]], node[g.fanin[1]])
        elif g.op is Op.NAND:
            node[w] = mgr.negate(mgr.apply("and", node[g.fanin[0]], node[g.fanin[1]]))
        elif g.op is Op.NOR:
            node[w] = mgr.negate(mgr.apply("or", node[g.fanin[0]], node[g.fanin[1]]))
        elif g.op is Op.XNOR:
            node[w] = mgr.negate(mgr.apply("xor", node[g.fanin[0]], node[g.fanin[1]]))
        elif g.op is Op.ANDN:
            node[w] = mgr.apply("and", node[g.fanin[0]], mgr.negate(node[g.fanin[1]]))
        elif g.op is Op.ORN:
            node[w] = mgr.apply("or", node[g.fanin[0]], mgr.negate(node[g.fanin[1]]))
        else:  # pragma: no cover
            raise AssertionError(g.op)

    outputs = {name: [node[w] for w in bus] for name, bus in nl.outputs.items()}
    return mgr, outputs


def prove_equivalent(a: Netlist, b: Netlist) -> bool:
    """Complete combinational equivalence check.

    Requires identical port signatures (names, widths, declaration
    order); returns True iff every output bit computes the same Boolean
    function — by ROBDD canonicity, a proof, not a sample.
    """
    sig_a = [(n, bus.width) for n, bus in a.inputs.items()]
    sig_b = [(n, bus.width) for n, bus in b.inputs.items()]
    if sig_a != sig_b:
        raise ValueError(f"input signatures differ: {sig_a} vs {sig_b}")
    if set(a.outputs) != set(b.outputs):
        raise ValueError("output names differ")
    mgr = _bdd_class()(sum(w for _, w in sig_a))
    _, outs_a = netlist_to_bdds(a, mgr)
    _, outs_b = netlist_to_bdds(b, mgr)
    for name in outs_a:
        if len(outs_a[name]) != len(outs_b[name]):
            return False
        if outs_a[name] != outs_b[name]:
            return False
    return True


def prove_constant_output(nl: Netlist, output: str, value: int) -> bool:
    """Prove an output bus is the constant ``value`` for every input."""
    BDD = _bdd_class()
    _, outs = netlist_to_bdds(nl)
    bits = outs[output]
    want = [(value >> i) & 1 for i in range(len(bits))]
    return all(bit == (BDD.TRUE if w else BDD.FALSE) for bit, w in zip(bits, want))


def find_distinguishing_input(a: Netlist, b: Netlist) -> dict[str, int] | None:
    """A counterexample assignment where the two netlists differ.

    Returns None when equivalent.  The witness comes from walking a
    satisfying path of the XOR of the first differing output bits.
    """
    sig = [(n, bus.width) for n, bus in a.inputs.items()]
    mgr = _bdd_class()(sum(w for _, w in sig))
    _, outs_a = netlist_to_bdds(a, mgr)
    _, outs_b = netlist_to_bdds(b, mgr)
    BDD = _bdd_class()
    for name in outs_a:
        for bit_a, bit_b in zip(outs_a[name], outs_b[name]):
            diff = mgr.apply("xor", bit_a, bit_b)
            if diff == BDD.FALSE:
                continue
            assignment = _satisfying_assignment(mgr, diff)
            out: dict[str, int] = {}
            var = 0
            for in_name, width in sig:
                value = 0
                for i in range(width):
                    value |= assignment.get(var, 0) << i
                    var += 1
                out[in_name] = value
            return out
    return None


def _satisfying_assignment(mgr: "BDD", root: int) -> dict[int, int]:
    """One satisfying assignment of a non-FALSE BDD (unset vars free=0)."""
    BDD = _bdd_class()
    assert root != BDD.FALSE
    out: dict[int, int] = {}
    nid = root
    while nid != BDD.TRUE:
        var = mgr.var_of(nid)
        lo, hi = mgr.cofactors(nid)
        if lo != BDD.FALSE:
            out[var] = 0
            nid = lo
        else:
            out[var] = 1
            nid = hi
    return out
