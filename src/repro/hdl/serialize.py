"""Netlist (de)serialisation to a stable JSON document.

Lets a synthesised circuit be saved, diffed, shipped to another tool, or
golden-filed in tests without re-running the generator.  The format is a
plain dict: gate table (op + fanins), register list, and named port maps —
loadable with :func:`netlist_from_dict` into a bit-identical netlist
(asserted structurally and behaviourally in the tests).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist, Register

__all__ = [
    "netlist_to_dict",
    "netlist_from_dict",
    "save_netlist",
    "load_netlist",
    "netlist_fingerprint",
]

FORMAT_VERSION = 1


def netlist_to_dict(nl: Netlist) -> dict[str, Any]:
    """A JSON-ready description of the netlist."""
    nl.check()
    return {
        "format": "repro-netlist",
        "version": FORMAT_VERSION,
        "name": nl.name,
        "gates": [
            # `is not None`, not truthiness: the empty string is a legal
            # (if odd) gate name and must survive the round trip
            {"op": g.op.value, "fanin": list(g.fanin),
             **({"name": g.name} if g.name is not None else {})}
            for g in nl.gates
        ],
        "registers": [
            {"q": r.q, "d": r.d, "init": bool(r.init)} for r in nl.registers
        ],
        "inputs": {name: list(bus) for name, bus in nl.inputs.items()},
        "outputs": {name: list(bus) for name, bus in nl.outputs.items()},
    }


def netlist_from_dict(doc: dict[str, Any]) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_dict` output.

    Reconstruction bypasses folding/CSE (the stored structure is already
    the final one) by appending gates directly, then re-validates.
    """
    if doc.get("format") != "repro-netlist":
        raise ValueError("not a repro netlist document")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {doc.get('version')!r}")
    nl = Netlist(name=doc.get("name", "top"))
    for entry in doc["gates"]:
        op = Op(entry["op"])
        nl._new_wire(op, tuple(entry["fanin"]), entry.get("name"))
    # restore shared-constant and structural-hashing bookkeeping so a
    # reloaded netlist folds and dedupes further edits exactly like the
    # original builder would
    for w, g in enumerate(nl.gates):
        if g.op is Op.CONST0:
            if nl._const0 is None:
                nl._const0 = w
        elif g.op is Op.CONST1:
            if nl._const1 is None:
                nl._const1 = w
        elif g.op not in (Op.INPUT, Op.REG):
            nl._cse.setdefault(Netlist._cse_key(g.op, g.fanin), w)
    for entry in doc["registers"]:
        nl.registers.append(Register(q=entry["q"], d=entry["d"], init=bool(entry["init"])))
    for name, wires in doc["inputs"].items():
        nl.inputs[name] = Bus(wires)
    for name, wires in doc["outputs"].items():
        nl.outputs[name] = Bus(wires)
    nl.check()
    return nl


def netlist_fingerprint(nl: Netlist) -> str:
    """Content hash of the canonical serialised form.

    The SHA-256 of the :func:`netlist_to_dict` JSON (sorted keys, no
    whitespace) — two netlists share a fingerprint iff they are
    structurally identical, so it is the cache key for compiled
    simulation kernels (:mod:`repro.hdl.compile`).

    The hash is memoised on the netlist, keyed by the builder's mutation
    version plus structure counts: any edit through the construction API
    (``gate``/``input``/``output``/``register``/direct ``registers``
    appends) invalidates it.  In-place surgery on existing ``gates``
    entries bypasses the builder and is not tracked.
    """
    token: tuple[object, ...] = (
        nl._version,
        len(nl.gates),
        len(nl.registers),
        len(nl.inputs),
        len(nl.outputs),
    )
    cached = nl._fingerprint_cache
    if cached is not None and cached[0] == token:
        return cached[1]
    blob = json.dumps(netlist_to_dict(nl), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    nl._fingerprint_cache = (token, digest)
    return digest


def save_netlist(nl: Netlist, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(netlist_to_dict(nl), fh)


def load_netlist(path: str) -> Netlist:
    with open(path) as fh:
        return netlist_from_dict(json.load(fh))
