"""The unified simulation-engine protocol and registry.

Every simulation backend — the boolean interpreter, the compiled
bit-packed bigint kernels, the NumPy wide-lane vector kernels — is one
:class:`Engine` subclass registered here.  The simulators, the serving
layer, fault campaigns and the CLI all resolve a ``backend`` string
through :func:`resolve_backend` instead of keeping their own
``if backend == ...`` chains, so a new backend (a C kernel via cffi, a
multiprocess shard engine) drops in by defining one class.

Capabilities, not names
-----------------------
Dispatch is driven by :class:`EngineCapabilities`, a declarative record
of what an engine can host:

==================  ====================================================
field               meaning
==================  ====================================================
``sweep_lanes``     payload-lane quantum per sweep — the batch size the
                    serving micro-batcher coalesces to and the slot
                    budget fault-parallel campaigns pack against
``probes``          can attach a :class:`~repro.obs.probes.SimProbe`
                    (requires a materialised wire-value table)
``patch_masks``     per-lane stuck-at masks — uniform stuck overlays and
                    :class:`~repro.hdl.compile.PackedFaultPlan` plans
``seu_lanes``       per-lane SEU state flips on sequential stepping
``general_overlays``  the full interpreter overlay protocol, including
                    bridging faults that read aggressor wires mid-sweep
``incremental``     event-driven sequential kernels (gates re-evaluate
                    only on fanin change)
``auto_priority``   rank under ``backend="auto"`` — highest accepted
                    priority wins
==================  ====================================================

Resolution rules (the fallback matrix):

* ``backend="auto"`` picks the highest-priority engine whose
  :meth:`Engine.accepts` admits the ``(probe, overlay)`` pair.  The
  built-in priorities keep the historical behaviour exactly: compiled
  whenever it can serve, interpreter otherwise; the vector engine is an
  explicit opt-in (``backend="vector"``) because its per-sweep NumPy
  dispatch only pays off on wide batches.
* An explicit backend that cannot serve the request (a probe on a
  packed engine, a bridging overlay) falls back to the fully-general
  engine — the interpreter — rather than failing, mirroring the
  pre-protocol behaviour.
* Unknown names raise ``ValueError`` listing :data:`BACKENDS`.

Engines are stateless (classmethod-only): per-run state lives on the
simulator / batch-entry object handed to each hook, so one registry
entry serves every concurrent simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from importlib import import_module
from typing import Any, ClassVar, Iterator, Mapping, Sequence, overload

__all__ = [
    "BACKENDS",
    "Engine",
    "EngineCapabilities",
    "engine_capability",
    "engine_names",
    "get_engine",
    "overlay_packable",
    "register_engine",
    "require_backend",
    "resolve_backend",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """Declarative capability record of one simulation backend."""

    name: str  #: registry key, the ``backend=`` string
    sweep_lanes: int  #: payload-lane quantum per sweep
    probes: bool  #: can host a SimProbe (wire-value table)
    patch_masks: bool  #: per-lane stuck-at masks (packed fault plans)
    seu_lanes: bool  #: per-lane SEU flips on sequential state
    general_overlays: bool  #: arbitrary overlay protocol (bridging...)
    incremental: bool  #: event-driven sequential kernels
    auto_priority: int = 0  #: rank under ``backend="auto"`` (higher wins)


def overlay_packable(overlay: Any) -> bool:
    """Whether ``overlay`` compiles to per-lane ``(keep, force)`` masks.

    True for ``None``, for :class:`~repro.hdl.compile.PackedFaultPlan`
    and for overlays whose ``stuck_assignments()`` returns a mapping —
    exactly the requests the mask-patching engines can host.  Bridging
    overlays (``stuck_assignments()`` is ``None``) are not packable:
    they read aggressor wire values mid-sweep.
    """
    if overlay is None:
        return True
    from repro.hdl.compile import PackedFaultPlan

    if isinstance(overlay, PackedFaultPlan):
        return True
    getter = getattr(overlay, "stuck_assignments", None)
    return getter is not None and getter() is not None


class Engine(ABC):
    """One registered simulation backend.

    Hooks receive the stateful object (a
    :class:`~repro.hdl.simulator.CombinationalSimulator`,
    :class:`~repro.hdl.simulator.SequentialSimulator` or
    :class:`~repro.hdl.simulator.BatchEntry`) as their first argument;
    the engine class itself carries no per-run state.
    """

    name: ClassVar[str]
    capabilities: ClassVar[EngineCapabilities]

    @classmethod
    def accepts(cls, probe: Any = None, overlay: Any = None) -> bool:
        """Whether this engine can serve a ``(probe, overlay)`` request."""
        caps = cls.capabilities
        if probe is not None and not caps.probes:
            return False
        if overlay is None or caps.general_overlays:
            return True
        return caps.patch_masks and overlay_packable(overlay)

    # -- combinational sweep -------------------------------------------- #

    @classmethod
    @abstractmethod
    def comb_run(
        cls,
        sim: Any,
        seqs: Mapping[str, Any],
        batch: int,
        reg_state: Any,
        overlay: Any,
    ) -> Mapping[str, Any]:
        """One combinational sweep for :meth:`CombinationalSimulator.run`."""

    # -- prepared batch sweep (serving hot path) ------------------------ #

    @classmethod
    @abstractmethod
    def batch_run(
        cls, entry: Any, seqs: Mapping[str, Any], batch: int, materialize: bool
    ) -> Mapping[str, Any]:
        """One sweep through a prepared :class:`BatchEntry` leaf layout."""

    # -- sequential session --------------------------------------------- #

    @classmethod
    @abstractmethod
    def seq_reset(cls, sim: Any) -> None:
        """Load every register with its init value in native packing."""

    @classmethod
    @abstractmethod
    def seq_step(cls, sim: Any, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        """Advance one clock; returns that cycle's outputs."""

    @classmethod
    @abstractmethod
    def seq_unpack_state(cls, sim: Any) -> dict[int, Any]:
        """Native register state → register Q wire → boolean lane vector."""

    @classmethod
    def seq_run_stream(
        cls, sim: Any, input_stream: Sequence[Mapping[str, Any]], materialize: bool
    ) -> list[Mapping[str, Any]]:
        """Feed per-cycle inputs; engines override to amortise packing."""
        return [cls.seq_step(sim, inputs) for inputs in input_stream]


# --------------------------------------------------------------------- #
# the registry

_REGISTRY: dict[str, type[Engine]] = {}
_BUILTINS_LOADED = False


def register_engine(cls: type[Engine]) -> type[Engine]:
    """Class decorator: add an :class:`Engine` subclass to the registry.

    Registration order defines the display order in :data:`BACKENDS`;
    re-registering a name replaces the previous engine (latest wins), so
    a test can shadow a builtin and restore it.
    """
    name = cls.name
    if name == "auto":
        raise ValueError('"auto" is the resolver keyword, not an engine name')
    _REGISTRY[name] = cls
    return cls


def _ensure_builtins() -> None:
    """Import the built-in engine modules exactly once.

    The builtins live in :mod:`repro.hdl.simulator` (interp, compiled)
    and :mod:`repro.hdl.vector`; importing them here — lazily, on first
    registry use — keeps this module import-cycle free while letting
    ``import repro.hdl.engine`` alone resolve every builtin backend.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import_module("repro.hdl.simulator")
    import_module("repro.hdl.vector")


def engine_names() -> tuple[str, ...]:
    """Registered engine names, in registration order (no ``"auto"``)."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def get_engine(name: str) -> type[Engine]:
    """The registered engine class for ``name`` (not ``"auto"``)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of " + ", ".join(BACKENDS)
        ) from None


def engine_capability(name: str) -> EngineCapabilities:
    """The capability record behind one registered backend name."""
    return get_engine(name).capabilities


def require_backend(backend: str) -> None:
    """Validate a ``backend`` string (``"auto"`` or a registered name)."""
    _ensure_builtins()
    if backend != "auto" and backend not in _REGISTRY:
        raise ValueError(f"backend must be one of {tuple(BACKENDS)}")


def _general_fallback() -> type[Engine]:
    for cls in _REGISTRY.values():
        caps = cls.capabilities
        if caps.general_overlays and caps.probes:
            return cls
    raise ValueError("no fully-general engine registered")  # pragma: no cover


def resolve_backend(
    backend: str, *, probe: Any = None, overlay: Any = None
) -> type[Engine]:
    """Resolve a ``backend`` string to the engine serving this request.

    ``"auto"`` returns the highest-``auto_priority`` engine that
    :meth:`Engine.accepts` the ``(probe, overlay)`` pair.  An explicit
    name returns that engine when it accepts, else the fully-general
    fallback (the interpreter) — the documented fallback matrix.
    Unknown names raise ``ValueError``.
    """
    _ensure_builtins()
    if backend == "auto":
        ranked = sorted(
            _REGISTRY.values(), key=lambda e: -e.capabilities.auto_priority
        )
        for cls in ranked:
            if cls.accepts(probe=probe, overlay=overlay):
                return cls
        raise ValueError(
            "no registered engine accepts this request"
        )  # pragma: no cover - the interpreter accepts everything
    cls = get_engine(backend)
    if cls.accepts(probe=probe, overlay=overlay):
        return cls
    return _general_fallback()


class _BackendNames(Sequence[str]):
    """Lazy live view of ``("auto", *engine_names())``.

    Exposed as :data:`BACKENDS` (and re-exported by
    :mod:`repro.hdl.simulator` for compatibility): membership tests,
    iteration and formatting all see the registry as it is *now*, so a
    backend registered after import — including the lazily-loaded
    builtins — is never missing from validation or error messages.
    """

    def _names(self) -> tuple[str, ...]:
        return ("auto", *engine_names())

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    @overload
    def __getitem__(self, index: int) -> str: ...

    @overload
    def __getitem__(self, index: slice) -> Sequence[str]: ...

    def __getitem__(self, index: "int | slice") -> "str | Sequence[str]":
        return self._names()[index]

    def __contains__(self, item: object) -> bool:
        return item in self._names()

    def __repr__(self) -> str:
        return repr(self._names())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, tuple):
            return self._names() == other
        if isinstance(other, _BackendNames):
            return True
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._names())


#: Engine selectors accepted everywhere a ``backend``/``engine`` string
#: is taken: ``("auto", "interp", "compiled", "vector")`` with the
#: builtin registrations.
BACKENDS = _BackendNames()
