"""Wide-lane vectorised simulation: the same kernels over NumPy words.

The compiled engine (:mod:`repro.hdl.compile`) packs Monte-Carlo lanes
into Python bigints, which is unbeatable at the 63-payload-lane sweep
quantum but scales linearly in interpreter dispatch beyond it: a bigint
``&`` is one CPython call no matter how wide, yet every *sweep* still
pays one bytecode dispatch per gate, so wider batches only help until
the per-gate word loop dominates.  This module breaks that ceiling by
running the *identical* exec-compiled straight-line kernels over NumPy
``uint64`` arrays of ``W`` words — up to ``64 * W`` lanes per sweep —
one vectorised ufunc per gate:

* The kernel source is dtype-agnostic: ``&``, ``|``, ``^`` and the
  masked inversion ``v ^ N`` mean the same thing whether ``v`` is a
  packed bigint or a ``(W,)`` ``uint64`` array, and the patch hook
  ``(v & keep) | force`` consumes per-wire word *arrays* exactly as it
  consumes packed integers.  :func:`vector_kernel` therefore reuses
  :func:`~repro.hdl.compile.compile_netlist` (and its LRU, fingerprint
  invalidation and :func:`~repro.hdl.compile.evict_kernel` quarantine)
  and only adds a lane-count-keyed tier caching the prepared
  ``(kernel, zero, ones)`` triple per batch width.
* Lane ``i`` lives at bit ``i % 64`` of word ``i // 64`` — the exact
  little-endian layout of :func:`~repro.hdl.compile.pack_lanes` — so a
  packed bigint and a word array holding the same sweep are the same
  bytes, and every boundary helper here round-trips bit-identically
  against the bigint engine (asserted by hypothesis property tests).
* ``N`` (all-lanes-set) masks its tail word to the batch width, so
  inversion never sets bits beyond the last lane and NumPy's ``~``
  (which would) is never emitted — same invariant as the bigint
  kernels.

The engine registers as ``backend="vector"`` with a
4096-lane sweep quantum (:data:`VECTOR_SWEEP_LANES`): fault-parallel
campaigns pack thousands of faults next to one golden lane per sweep
instead of 63, and the serving layer admits batches to match.  ``auto``
never picks it — NumPy ufunc dispatch costs more than a one-word bigint
op at small batches — it is an explicit opt-in for wide sweeps.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.hdl.compile import (
    PackedFaultPlan,
    compile_netlist,
    words_for,
)
from repro.hdl.engine import Engine, EngineCapabilities, register_engine
from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import (
    _coerce_inputs,
    _fold_bits,
    _observe_sweep,
    bits_from_ints,
    ints_from_bits,
    packed_bit_columns,
)
from repro.obs import metrics as _metrics

__all__ = [
    "VECTOR_CACHE_LIMIT",
    "VECTOR_SWEEP_LANES",
    "VectorEngine",
    "VectorOutputs",
    "clear_vector_cache",
    "lanes_to_words",
    "u64_from_int",
    "vec_from_ints",
    "vector_cache_info",
    "vector_constants",
    "vector_kernel",
    "outputs_from_words",
    "words_to_lanes",
]

#: Payload-lane sweep quantum reported by the vector engine: 64 words of
#: 64 lanes.  Wide enough that a whole stuck-at campaign usually fits in
#: one sweep; small enough that per-wire arrays stay cache-resident.
VECTOR_SWEEP_LANES = 4096

#: Prepared ``(kernel, zero, ones)`` triples retained per (netlist,
#: lanes, patchable) key — one per live circuit × batch width.
VECTOR_CACHE_LIMIT = 64

_VEC_CACHE_EVENTS = _metrics.REGISTRY.counter(
    "repro_vector_kernel_cache_total",
    "vector-engine prepared-kernel cache lookups",
    ("result",),
)

# Word arrays carry native-endian uint64 *values*; every byte-level
# conversion goes through an explicit little-endian ("<u8") astype, so
# the lane layout matches pack_lanes() on any host byte order.
_WORD_LE = "<u8"


@lru_cache(maxsize=128)
def vector_constants(lanes: int) -> tuple[np.ndarray, np.ndarray]:
    """Shared read-only ``(zero, ones)`` word arrays for ``lanes`` lanes.

    ``ones`` masks its tail word to the batch width — the vector
    analogue of :func:`~repro.hdl.compile.ones_mask` — so kernel
    inversion (``v ^ N``) never sets bits beyond the last lane.
    """
    lanes = max(1, lanes)
    words = words_for(lanes)
    zero = np.zeros(words, dtype=np.uint64)
    ones = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = lanes - 64 * (words - 1)
    if tail < 64:
        ones[-1] = np.uint64((1 << tail) - 1)
    zero.setflags(write=False)
    ones.setflags(write=False)
    return zero, ones


_VCACHE: "OrderedDict[tuple[str, int, bool], tuple[Any, np.ndarray, np.ndarray]]" = (
    OrderedDict()
)
_VHITS = 0
_VMISSES = 0


def vector_kernel(
    nl: Netlist, *, patchable: bool = False, lanes: int
) -> tuple[Any, np.ndarray, np.ndarray]:
    """The prepared ``(kernel, zero, ones)`` triple for one batch width.

    The kernel object is exactly :func:`~repro.hdl.compile.
    compile_netlist`'s (shared with the bigint engine through its LRU);
    this tier only pins the lane-width constants next to it so the hot
    path pays one dict probe instead of recomputing word counts and tail
    masks per sweep.  Entries are keyed by ``(fingerprint, lanes,
    patchable)`` and checked against the bigint LRU's current object, so
    :func:`~repro.hdl.compile.evict_kernel` quarantine and fingerprint
    invalidation propagate here automatically.
    """
    global _VHITS, _VMISSES
    kern = compile_netlist(nl, patchable=patchable)
    key = (kern.fingerprint, lanes, patchable)
    entry = _VCACHE.get(key)
    if entry is not None and entry[0] is kern:
        _VCACHE.move_to_end(key)
        _VHITS += 1
        if _metrics.REGISTRY.enabled:
            _VEC_CACHE_EVENTS.inc(result="hit")
        return entry
    _VMISSES += 1
    zero, ones = vector_constants(lanes)
    entry = (kern, zero, ones)
    _VCACHE[key] = entry
    while len(_VCACHE) > VECTOR_CACHE_LIMIT:
        _VCACHE.popitem(last=False)
    if _metrics.REGISTRY.enabled:
        _VEC_CACHE_EVENTS.inc(result="miss")
    return entry


def vector_cache_info() -> dict[str, int]:
    """Cache statistics: ``{"size", "hits", "misses"}`` (process-wide)."""
    return {"size": len(_VCACHE), "hits": _VHITS, "misses": _VMISSES}


def clear_vector_cache() -> None:
    """Drop every prepared kernel triple and zero the hit/miss counters."""
    global _VHITS, _VMISSES
    _VCACHE.clear()
    _VHITS = 0
    _VMISSES = 0


# --------------------------------------------------------------------- #
# word <-> lane boundary


def lanes_to_words(lane: np.ndarray, words: int) -> np.ndarray:
    """Pack a boolean lane vector into ``(words,)`` uint64, lane i at bit i.

    The word-array analogue of :func:`~repro.hdl.compile.pack_lanes`:
    both produce the identical little-endian byte stream.
    """
    bits = np.ascontiguousarray(lane, dtype=bool)
    packed = np.packbits(bits, bitorder="little")
    buf = np.zeros(words * 8, dtype=np.uint8)
    buf[: packed.size] = packed
    return buf.view(_WORD_LE).astype(np.uint64, copy=False)


def words_to_lanes(arr: np.ndarray, lanes: int) -> np.ndarray:
    """Inverse of :func:`lanes_to_words`: the first ``lanes`` bits, as bools."""
    raw = np.ascontiguousarray(arr, dtype=_WORD_LE).view(np.uint8)
    bits = np.unpackbits(raw, count=lanes, bitorder="little")
    return bits.astype(bool)


def u64_from_int(value: int, words: int) -> np.ndarray:
    """A packed bigint (``pack_lanes`` layout) as a ``(words,)`` word array.

    How :class:`~repro.hdl.compile.PackedFaultPlan` ``(keep, force)``
    masks cross into the vector engine without re-deriving the plan.
    The result is read-only (it views the immutable bytes).
    """
    raw = np.frombuffer(value.to_bytes(words * 8, "little"), dtype=_WORD_LE)
    return raw.astype(np.uint64, copy=False)


def vec_from_ints(
    values: "Sequence[int] | np.ndarray",
    width: int,
    batch: int,
    words: int,
    zero: np.ndarray,
    ones: np.ndarray,
) -> list[np.ndarray]:
    """Explode a word batch into per-wire ``(words,)`` lane-word arrays.

    The vector analogue of the simulator's packed-int boundary
    transpose: machine-word buses transpose byte-wise with one
    ``unpackbits``/``packbits`` round trip, scalars broadcast to the
    shared all-lanes/no-lanes constants, wide buses fall back to the
    per-wire path.
    """
    arr = values if isinstance(values, np.ndarray) else np.asarray(values)
    n_vals = arr.shape[0] if arr.ndim else 1
    if n_vals == 1 and batch != 1:
        # broadcast: each bit of the single word fills every lane
        return [
            ones if bool(lane[0]) else zero
            for lane in bits_from_ints(values, width)
        ]
    if width <= 64 and arr.dtype.kind in "iu" and arr.size:
        lo = int(arr.min())
        if lo < 0:
            raise ValueError("bus values must be non-negative")
        hi = int(arr.max())
        if hi.bit_length() > width:
            raise ValueError(f"value {hi} does not fit in {width} bits")
        cols = packed_bit_columns(arr, width)
        buf = np.zeros((width, words * 8), dtype=np.uint8)
        buf[:, : cols.shape[1]] = cols
        rows = buf.view(_WORD_LE).astype(np.uint64, copy=False)
        return [rows[i] for i in range(width)]
    return [
        lanes_to_words(lane, words) for lane in bits_from_ints(values, width)
    ]


def outputs_from_words(
    buses: Sequence[tuple[str, list[np.ndarray]]], lanes: int
) -> dict[str, np.ndarray]:
    """Convert every output bus of a vector sweep in one boundary transpose.

    Mirrors the packed-int output path: all machine-word buses stack
    into a single bit matrix so ``unpackbits`` dispatches once per
    sweep, and wide buses fall back to the per-wire bigint path.
    """
    out: dict[str, np.ndarray] = {}
    narrow: list[tuple[str, list[np.ndarray]]] = []
    for name, vals in buses:
        if len(vals) > 64:
            out[name] = ints_from_bits(
                [words_to_lanes(v, lanes) for v in vals]
            )
        else:
            narrow.append((name, vals))
    if narrow:
        words = words_for(lanes)
        total = sum(len(vals) for _, vals in narrow)
        stack = np.empty((total, words), dtype=np.uint64)
        row = 0
        for _, vals in narrow:
            for v in vals:
                stack[row] = v
                row += 1
        raw = stack.astype(_WORD_LE, copy=False).view(np.uint8)
        bits = np.unpackbits(
            raw.reshape(total, words * 8),
            axis=1,
            count=lanes,
            bitorder="little",
        )
        row = 0
        for name, vals in narrow:
            out[name] = _fold_bits(bits[row : row + len(vals)])
            row += len(vals)
    return out


class VectorOutputs(Mapping[str, np.ndarray]):
    """Deferred bus materialisation for the vector engine.

    The word-array analogue of the compiled engine's lazy output
    mapping: holds each output bus's per-wire word arrays and performs
    the word → per-lane boundary transpose the first time a bus is read
    (caching the result).
    """

    __slots__ = ("_buses", "_lanes", "_cache")

    def __init__(self, buses: dict[str, list[np.ndarray]], lanes: int) -> None:
        self._buses = buses
        self._lanes = lanes
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._cache.get(name)
        if arr is None:
            arr = outputs_from_words([(name, self._buses[name])], self._lanes)[
                name
            ]
            self._cache[name] = arr
        return arr

    def __iter__(self) -> Iterator[str]:
        return iter(self._buses)

    def __len__(self) -> int:
        return len(self._buses)


# --------------------------------------------------------------------- #
# the engine


def _overlay_word_masks(
    overlay: Any,
    batch: int,
    words: int,
    zero: np.ndarray,
    ones: np.ndarray,
) -> Mapping[int, tuple[np.ndarray, np.ndarray]]:
    """An accepted overlay's per-wire ``(keep, force)`` word-array masks."""
    if overlay is None:
        return {}
    if isinstance(overlay, PackedFaultPlan):
        if overlay.lanes != batch:
            raise ValueError(
                f"fault plan has {overlay.lanes} lanes, batch is {batch}"
            )
        return {
            w: (u64_from_int(keep, words), u64_from_int(force, words))
            for w, (keep, force) in overlay.masks.items()
        }
    stuck = overlay.stuck_assignments()
    if not stuck:
        return {}
    return {w: (zero, ones if v else zero) for w, v in stuck.items()}


@register_engine
class VectorEngine(Engine):
    """NumPy ``uint64`` word-array sweeps over the compiled kernels.

    Identical capability surface to the compiled engine (per-lane patch
    masks and SEU flips, no probes, no bridging overlays) but a 4096-lane
    sweep quantum.  ``auto_priority`` sits between compiled and interp:
    auto never reaches it (compiled accepts the same requests at higher
    priority) — wide-sweep callers opt in with ``backend="vector"``.
    """

    name = "vector"
    capabilities = EngineCapabilities(
        name="vector",
        sweep_lanes=VECTOR_SWEEP_LANES,
        probes=False,
        patch_masks=True,
        seu_lanes=True,
        general_overlays=False,
        incremental=False,
        auto_priority=50,
    )

    # -- combinational sweep -------------------------------------------- #

    @classmethod
    def comb_run(
        cls,
        sim: Any,
        seqs: Mapping[str, Any],
        batch: int,
        reg_state: Any,
        overlay: Any,
    ) -> Mapping[str, Any]:
        nl = sim.netlist
        if reg_state:
            widest = max(np.asarray(v).shape[0] for v in reg_state.values())
            batch = max(batch, widest)
        words = words_for(batch)
        zero, ones = vector_constants(batch)
        masks = _overlay_word_masks(overlay, batch, words, zero, ones)
        kern, zero, ones = vector_kernel(
            nl, patchable=bool(masks), lanes=batch
        )

        input_words: dict[int, np.ndarray] = {}
        for name, bus in nl.inputs.items():
            vec_bus = vec_from_ints(
                seqs[name], bus.width, batch, words, zero, ones
            )
            for wire, value in zip(bus, vec_bus):
                input_words[wire] = value
        init_state = {r.q: r.init for r in nl.registers}
        leaves: list[np.ndarray] = []
        for w in kern.leaves:
            g = nl.gates[w]
            if g.op is Op.INPUT:
                if w not in input_words:
                    raise ValueError(
                        f"input wire {w} ({g.name}) left undriven"
                    )
                leaves.append(input_words[w])
            else:  # REG
                if reg_state is not None and w in reg_state:
                    lane = np.asarray(reg_state[w], dtype=bool)
                    if lane.shape[0] != batch:
                        lane = np.broadcast_to(lane, (batch,))
                    leaves.append(lanes_to_words(lane, words))
                else:
                    leaves.append(ones if init_state[w] else zero)

        outs = kern.fn(leaves, masks, zero, ones)
        sim._wire_values = []  # the vector engine keeps no wire table
        _observe_sweep("vector", batch)
        return outputs_from_words(
            [
                (name, [outs[kern.index[w]] for w in bus])
                for name, bus in nl.outputs.items()
            ],
            batch,
        )

    # -- prepared batch sweep (serving hot path) ------------------------ #

    @classmethod
    def batch_run(
        cls, entry: Any, seqs: Mapping[str, Any], batch: int, materialize: bool
    ) -> Mapping[str, Any]:
        kern = entry.kernel
        words = words_for(batch)
        zero, ones = vector_constants(batch)
        leaves: list[np.ndarray] = [zero] * entry._n_leaves
        for pos, init in entry._reg_slots:
            leaves[pos] = ones if init else zero
        for name, width, positions in entry._input_slots:
            vec_bus = vec_from_ints(seqs[name], width, batch, words, zero, ones)
            for pos, value in zip(positions, vec_bus):
                if pos is not None:
                    leaves[pos] = value
        outs = kern.fn(leaves, {}, zero, ones)
        _observe_sweep("vector", batch)
        index = kern.index
        buses = {
            name: [outs[index[w]] for w in bus]
            for name, bus in entry.netlist.outputs.items()
        }
        if materialize:
            return outputs_from_words(list(buses.items()), batch)
        return VectorOutputs(buses, batch)

    # -- sequential session --------------------------------------------- #

    @classmethod
    def _word_masks(
        cls, sim: Any, words: int, zero: np.ndarray, ones: np.ndarray
    ) -> Mapping[int, tuple[np.ndarray, np.ndarray]]:
        masks = sim._scratch.get("masks")
        if masks is None:
            masks = _overlay_word_masks(
                sim.overlay, sim.batch, words, zero, ones
            )
            sim._scratch["masks"] = masks
        return masks

    @classmethod
    def _word_state(cls, sim: Any, words: int) -> dict[int, np.ndarray]:
        state = sim._scratch.get("state")
        if state is None:
            batch = sim.batch
            bool_state = sim._bool_state or {}
            state = {}
            for q, lane in bool_state.items():
                arr = np.asarray(lane, dtype=bool)
                if arr.shape[0] != batch:
                    arr = np.broadcast_to(arr, (batch,))
                state[q] = lanes_to_words(arr, words)
            sim._scratch["state"] = state
        return state

    @classmethod
    def _pack_inputs(
        cls, sim: Any, inputs: Mapping[str, Any]
    ) -> dict[int, np.ndarray]:
        nl, batch = sim.netlist, sim.batch
        words = words_for(batch)
        zero, ones = vector_constants(batch)
        seqs, in_batch = _coerce_inputs(nl, inputs)
        if in_batch not in (1, batch):
            raise ValueError("inconsistent batch sizes")
        input_words: dict[int, np.ndarray] = {}
        for name, bus in nl.inputs.items():
            vec_bus = vec_from_ints(
                seqs[name], bus.width, batch, words, zero, ones
            )
            for wire, value in zip(bus, vec_bus):
                input_words[wire] = value
        return input_words

    @classmethod
    def _advance(
        cls, sim: Any, input_words: Mapping[int, np.ndarray]
    ) -> tuple[list[np.ndarray], Any]:
        """One vector clock tick on pre-packed inputs; returns raw words."""
        nl, batch = sim.netlist, sim.batch
        words = words_for(batch)
        zero, ones = vector_constants(batch)
        masks = cls._word_masks(sim, words, zero, ones)
        kern, zero, ones = vector_kernel(
            nl, patchable=bool(masks), lanes=batch
        )
        state = cls._word_state(sim, words)

        if sim.overlay is not None:
            flips = getattr(sim.overlay, "seu_lane_flips", None)
            if flips is not None:
                for q, lane_mask in flips(sim.cycle).items():
                    state[q] = state[q] ^ lanes_to_words(
                        np.asarray(lane_mask, dtype=bool), words
                    )
            for q in sim.overlay.seu(sim.cycle):
                state[q] = state[q] ^ ones

        init_state = {r.q: r.init for r in nl.registers}
        leaves: list[np.ndarray] = []
        for w in kern.leaves:
            g = nl.gates[w]
            if g.op is Op.INPUT:
                if w not in input_words:
                    raise ValueError(
                        f"input wire {w} ({g.name}) left undriven"
                    )
                leaves.append(input_words[w])
            elif w in state:
                leaves.append(state[w])
            else:
                leaves.append(ones if init_state[w] else zero)

        outs = kern.fn(leaves, masks, zero, ones)
        sim._scratch["state"] = {
            r.q: outs[kern.index[r.d]] for r in nl.registers
        }
        sim._bool_state = None
        sim.cycle += 1
        _observe_sweep("vector", batch)
        return outs, kern

    @classmethod
    def seq_reset(cls, sim: Any) -> None:
        zero, ones = vector_constants(sim.batch)
        sim._scratch["state"] = {
            r.q: (ones if r.init else zero) for r in sim.netlist.registers
        }
        sim._bool_state = None
        sim._packed_state = None

    @classmethod
    def seq_step(cls, sim: Any, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        outs, kern = cls._advance(sim, cls._pack_inputs(sim, inputs))
        return outputs_from_words(
            [
                (name, [outs[kern.index[w]] for w in bus])
                for name, bus in sim.netlist.outputs.items()
            ],
            sim.batch,
        )

    @classmethod
    def seq_unpack_state(cls, sim: Any) -> dict[int, Any]:
        state = sim._scratch.get("state") or {}
        return {
            q: words_to_lanes(value, sim.batch) for q, value in state.items()
        }

    @classmethod
    def seq_run_stream(
        cls,
        sim: Any,
        input_stream: Sequence[Mapping[str, Any]],
        materialize: bool,
    ) -> list[Mapping[str, Any]]:
        nl, batch = sim.netlist, sim.batch
        words = words_for(batch)
        zero, ones = vector_constants(batch)
        results: list[Mapping[str, np.ndarray]] = []
        prev: dict[str, Any] = {}
        input_words: dict[int, np.ndarray] = {}
        for inputs in input_stream:
            seqs, in_batch = _coerce_inputs(nl, inputs)
            if in_batch not in (1, batch):
                raise ValueError("inconsistent batch sizes")
            for name, bus in nl.inputs.items():
                val = seqs[name]
                # a held input (the same array object cycle after cycle,
                # as when filling a pipeline with one batch) packs once
                if prev.get(name) is not val:
                    vec_bus = vec_from_ints(
                        val, bus.width, batch, words, zero, ones
                    )
                    for wire, value in zip(bus, vec_bus):
                        input_words[wire] = value
                    prev[name] = val
            outs, kern = cls._advance(sim, input_words)
            buses = {
                name: [outs[kern.index[w]] for w in bus]
                for name, bus in nl.outputs.items()
            }
            if materialize:
                results.append(outputs_from_words(list(buses.items()), batch))
            else:
                results.append(VectorOutputs(buses, batch))
        return results
