"""Compiled two-state simulation: netlist → straight-line bit-packed kernel.

The interpreting simulators in :mod:`repro.hdl.simulator` walk the gate
list one :class:`~repro.hdl.gates.Op` at a time, paying a Python dispatch
per gate per sweep.  This module removes that interpreter loop the way
Verilator does for Verilog: the levelised netlist is *compiled* — once —
into straight-line Python source with one local variable per live wire,

.. code-block:: python

    def _kernel(L, P, Z, N):
        v12 = L[0]
        v13 = v12 & v7
        v14 = (v13 ^ v9) ^ N
        ...
        return (v97, v98, ...)

and evaluated over **bit-packed lanes**: every wire carries one Python
arbitrary-precision integer holding ``batch`` bits, one *bit* per
Monte-Carlo lane.  A single ``&`` between two wires therefore simulates
the whole batch in one C word-loop, and CPython executes one bytecode
dispatch per gate per sweep instead of one per gate per lane.  Plain
ints beat NumPy word arrays here: a uint64 ufunc call costs ~500 ns of
dispatch regardless of size, while a big-int ``&`` on the same data is
a single malloc-plus-loop an order of magnitude cheaper at the word
counts netlist sweeps see (≤ thousands of lanes).  Two-state semantics
(0/1, no X/Z) match the boolean interpreter exactly, so the engines are
interchangeable bit for bit — asserted by property tests.

Inversion is compiled as ``v ^ N`` where ``N`` is the all-lanes-set
mask, so values never carry bits beyond ``batch`` and Python's signed
``~`` (which would set infinitely many high bits) is never emitted.

Event-driven kernels
--------------------
Sequential streams rarely change every wire every cycle: a pipeline
filling under a held input batch only moves a wavefront of activity one
stage forward per clock.  The *incremental* kernel variant exploits
that — every wire keeps its previous value in a per-simulator state
list ``S`` and a gate re-evaluates only when a fanin's value **object**
changed since the last call.  Identity implies equality for ints, so
skipping on ``is`` can never diverge from full re-evaluation; settled
logic costs two name loads and a branch per gate instead of a big-int
operation.  :class:`~repro.hdl.simulator.SequentialSimulator` uses this
variant whenever no stuck-at masks are active.

Kernel cache
------------
``exec``-compiling costs milliseconds, so kernels are cached in a bounded
LRU keyed by ``(netlist fingerprint, patchable, incremental)``.  The
fingerprint is
the SHA-256 of the canonical serialised form
(:func:`repro.hdl.serialize.netlist_fingerprint`), so mutating a netlist
through the builder API invalidates its kernel on the next call, while
structurally identical netlists — e.g. the same circuit rebuilt inside a
campaign worker — share one compilation.

Fault patching
--------------
A *patchable* kernel additionally emits, after every wire assignment::

    m = P.get(17)
    if m is not None: v17 = (v17 & m[0]) | m[1]

``P`` maps wire → ``(keep, force)`` packed integer masks: lanes cleared
in ``keep`` are overridden with the corresponding bit of ``force``.  That
expresses *per-lane* stuck-at faults — the basis of fault-parallel
campaigns, where :class:`PackedFaultPlan` packs one fault per lane next
to a golden lane and a single sweep evaluates 63 faults at once.  The
patch hook costs one dict probe per wire, so the unpatched kernel is
compiled without it.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist, Wire
from repro.hdl.serialize import netlist_fingerprint
from repro.obs import metrics as _metrics

__all__ = [
    "KERNEL_CACHE_LIMIT",
    "SWEEP_LANES",
    "CompiledKernel",
    "PackedFaultPlan",
    "compile_netlist",
    "kernel_cache_info",
    "clear_kernel_cache",
    "evict_kernel",
    "note_sweep",
    "words_for",
    "ones_mask",
    "pack_lanes",
    "unpack_lanes",
    "stuck_masks_from_overlay",
]

#: Maximum number of compiled kernels retained (LRU eviction beyond it).
KERNEL_CACHE_LIMIT = 128

#: Payload lanes per packed sweep quantum.  63 payload lanes plus one
#: spare keep every packed wire value inside a single 64-bit word — the
#: cheapest big-int a sweep can carry.  Fault-parallel campaigns spend
#: the spare lane on the golden (fault-free) slot; the serving layer's
#: micro-batcher coalesces up to this many requests into one sweep.
SWEEP_LANES = 63

_COMPILE_WALL = _metrics.REGISTRY.histogram(
    "repro_sim_compile_seconds",
    "netlist-to-kernel compile time",
    ("patchable",),
)
_CACHE_EVENTS = _metrics.REGISTRY.counter(
    "repro_sim_kernel_cache_total",
    "compiled-kernel cache lookups",
    ("result",),
)
_KERNEL_SWEEPS = _metrics.REGISTRY.counter(
    "repro_kernel_sweeps_total",
    "kernel sweep executions by serving-engine kind and backend",
    ("kind", "engine"),
)
_KERNEL_SWEEP_LANES = _metrics.REGISTRY.counter(
    "repro_kernel_sweep_lanes_total",
    "payload lanes carried by kernel sweeps, by engine kind and backend",
    ("kind", "engine"),
)


def note_sweep(kind: str, lanes: int = 1, engine: str = "compiled") -> None:
    """Count one executed sweep and its payload lanes (batch granularity).

    Called by the serving engines around each kernel sweep; the pair of
    counters gives dashboards the lanes-per-sweep amortisation ratio,
    broken out per simulation backend (``engine`` label — bounded
    cardinality: one series per registered backend per engine kind).
    One guard + two incs per *sweep* (not per lane), so the hot path
    pays nothing measurable.
    """
    if _metrics.REGISTRY.enabled:
        _KERNEL_SWEEPS.inc(kind=kind, engine=engine)
        _KERNEL_SWEEP_LANES.inc(lanes, kind=kind, engine=engine)


def words_for(lanes: int) -> int:
    """Number of 64-bit words needed to hold ``lanes`` bit-lanes."""
    return (max(1, lanes) + 63) // 64


def ones_mask(lanes: int) -> int:
    """The packed value with every one of ``lanes`` lanes set."""
    return (1 << max(1, lanes)) - 1


def pack_lanes(lane: np.ndarray) -> int:
    """Pack a boolean lane vector into one integer, lane ``i`` at bit ``i``."""
    bits = np.ascontiguousarray(lane, dtype=bool)
    return int.from_bytes(np.packbits(bits, bitorder="little").tobytes(), "little")


def unpack_lanes(value: int, lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: the first ``lanes`` bits, as bools."""
    raw = value.to_bytes(words_for(lanes) * 8, "little")
    bits = np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8), count=lanes, bitorder="little"
    )
    return bits.astype(bool)


class CompiledKernel:
    """One netlist compiled to a straight-line packed-lane sweep.

    Attributes
    ----------
    leaves:
        Wire indices the kernel reads externally (``INPUT`` and ``REG``
        gates in the live cone, in wire order).  The callable's first
        argument is a list of packed integers in exactly this order.
    returns:
        Wire indices the kernel returns, in order: every output-bus wire
        and every register D wire (``index`` maps wire → position).
    patchable:
        Whether the kernel probes the patch mapping after each wire.
    incremental:
        Whether the kernel is event-driven; its callable then takes a
        fifth argument, a mutable state list of ``state_slots`` entries
        (initially all ``None``) holding previous wire values.
    """

    __slots__ = (
        "fingerprint",
        "patchable",
        "incremental",
        "state_slots",
        "leaves",
        "returns",
        "index",
        "source",
        "compile_s",
        "fn",
    )

    def __init__(
        self,
        fingerprint: str,
        patchable: bool,
        incremental: bool,
        state_slots: int,
        leaves: tuple[Wire, ...],
        returns: tuple[Wire, ...],
        source: str,
        compile_s: float,
        fn: Callable[..., tuple[int, ...]],
    ) -> None:
        self.fingerprint = fingerprint
        self.patchable = patchable
        self.incremental = incremental
        self.state_slots = state_slots
        self.leaves = leaves
        self.returns = returns
        self.index: dict[Wire, int] = {w: i for i, w in enumerate(returns)}
        self.source = source
        self.compile_s = compile_s
        self.fn = fn

    def __repr__(self) -> str:
        return (
            f"<CompiledKernel {self.fingerprint[:12]} "
            f"leaves={len(self.leaves)} returns={len(self.returns)} "
            f"patchable={self.patchable} incremental={self.incremental}>"
        )


def _live_cone(nl: Netlist) -> list[Wire]:
    """Wires needed to produce outputs and register next-states, sorted.

    Wire indices are created in topological order (fanins precede their
    gate), so the sorted live set *is* a valid evaluation order — gates
    outside the observable cone are simply never emitted.
    """
    stack = [w for bus in nl.outputs.values() for w in bus]
    stack += [r.d for r in nl.registers] + [r.q for r in nl.registers]
    seen: set[Wire] = set()
    while stack:
        w = stack.pop()
        if w in seen:
            continue
        seen.add(w)
        stack.extend(nl.gates[w].fanin)
    return sorted(seen)


def _generate(
    nl: Netlist, patchable: bool, incremental: bool
) -> tuple[str, tuple[Wire, ...], tuple[Wire, ...], int]:
    """Emit kernel source plus leaf/return wire orders and state size.

    ``incremental=True`` emits the event-driven variant: every wire gets
    a slot in a per-simulator state list ``S`` holding its previous
    value, and a gate re-evaluates only when a fanin's value object
    changed since the last call (identity implies equality for ints, so
    skipping is always sound).  Settled logic — a filled pipeline stage
    under a held input — then costs two name loads and a branch instead
    of a big-int operation.
    """
    live = _live_cone(nl)
    leaves: list[Wire] = []
    sig = "def _kernel(L, P, Z, N, S):" if incremental else "def _kernel(L, P, Z, N):"
    lines = [sig]
    if patchable:
        lines.append("    _g = P.get")
    slot = 0
    for w in live:
        g = nl.gates[w]
        op = g.op
        source_gate = True  # reads the outside world, not other wires
        if op in (Op.INPUT, Op.REG):
            expr = f"L[{len(leaves)}]"
            leaves.append(w)
        elif op is Op.CONST0:
            expr = "Z"
        elif op is Op.CONST1:
            expr = "N"
        else:
            source_gate = False
            if op is Op.BUF:
                expr = f"v{g.fanin[0]}"
            elif op is Op.NOT:
                expr = f"v{g.fanin[0]} ^ N"
            elif op is Op.AND:
                expr = f"v{g.fanin[0]} & v{g.fanin[1]}"
            elif op is Op.OR:
                expr = f"v{g.fanin[0]} | v{g.fanin[1]}"
            elif op is Op.XOR:
                expr = f"v{g.fanin[0]} ^ v{g.fanin[1]}"
            elif op is Op.NAND:
                expr = f"(v{g.fanin[0]} & v{g.fanin[1]}) ^ N"
            elif op is Op.NOR:
                expr = f"(v{g.fanin[0]} | v{g.fanin[1]}) ^ N"
            elif op is Op.XNOR:
                expr = f"(v{g.fanin[0]} ^ v{g.fanin[1]}) ^ N"
            elif op is Op.ANDN:
                expr = f"v{g.fanin[0]} & (v{g.fanin[1]} ^ N)"
            elif op is Op.ORN:
                expr = f"v{g.fanin[0]} | (v{g.fanin[1]} ^ N)"
            elif op is Op.MUX:
                s, a, b = g.fanin
                # a ^ (s & (a ^ b)): three ops, no inversion mask
                expr = f"v{a} ^ (v{s} & (v{a} ^ v{b}))"
            else:  # pragma: no cover - exhaustive over Op
                raise ValueError(f"op {op} has no compiled form")
        if not incremental:
            lines.append(f"    v{w} = {expr}")
            if patchable:
                lines.append(f"    m = _g({w})")
                lines.append(f"    if m is not None: v{w} = (v{w} & m[0]) | m[1]")
            continue
        if source_gate:
            lines.append(f"    v{w} = {expr}")
            lines.append(f"    c{w} = v{w} is not S[{slot}]")
            lines.append(f"    if c{w}: S[{slot}] = v{w}")
        else:
            cond = " or ".join(f"c{f}" for f in g.fanin)
            lines.append(f"    if {cond}:")
            lines.append(f"        v{w} = {expr}; c{w} = True; S[{slot}] = v{w}")
            lines.append("    else:")
            lines.append(f"        v{w} = S[{slot}]; c{w} = False")
        slot += 1
    returns: list[Wire] = []
    seen_ret: set[Wire] = set()
    for w in [w for bus in nl.outputs.values() for w in bus] + [
        r.d for r in nl.registers
    ]:
        if w not in seen_ret:
            seen_ret.add(w)
            returns.append(w)
    body = ", ".join(f"v{w}" for w in returns)
    lines.append(f"    return ({body}{',' if len(returns) == 1 else ''})")
    return "\n".join(lines) + "\n", tuple(leaves), tuple(returns), slot


_CACHE: "OrderedDict[tuple[str, bool, bool], CompiledKernel]" = OrderedDict()
_HITS = 0
_MISSES = 0


def compile_netlist(
    nl: Netlist, *, patchable: bool = False, incremental: bool = False
) -> CompiledKernel:
    """Compile (or fetch from cache) the packed-lane kernel for ``nl``.

    ``patchable=True`` builds the variant with per-wire stuck-at mask
    hooks; ``incremental=True`` builds the event-driven variant whose
    gates re-evaluate only on fanin change (sequential streams).  The
    variants are cached independently because each hook costs per-wire
    work on every sweep.
    """
    global _HITS, _MISSES
    if patchable and incremental:
        raise ValueError("patchable and incremental kernels are exclusive")
    key = (netlist_fingerprint(nl), patchable, incremental)
    kern = _CACHE.get(key)
    if kern is not None:
        _CACHE.move_to_end(key)
        _HITS += 1
        if _metrics.REGISTRY.enabled:
            _CACHE_EVENTS.inc(result="hit")
        return kern
    _MISSES += 1
    t0 = time.perf_counter()
    source, leaves, returns, state_slots = _generate(nl, patchable, incremental)
    namespace: dict[str, Any] = {}
    code = compile(source, f"<kernel {nl.name} {key[0][:12]}>", "exec")
    exec(code, namespace)
    wall = time.perf_counter() - t0
    kern = CompiledKernel(
        fingerprint=key[0],
        patchable=patchable,
        incremental=incremental,
        state_slots=state_slots,
        leaves=leaves,
        returns=returns,
        source=source,
        compile_s=wall,
        fn=namespace["_kernel"],
    )
    _CACHE[key] = kern
    while len(_CACHE) > KERNEL_CACHE_LIMIT:
        _CACHE.popitem(last=False)
    if _metrics.REGISTRY.enabled:
        _CACHE_EVENTS.inc(result="miss")
        _COMPILE_WALL.observe(wall, patchable=str(patchable).lower())
    return kern


def kernel_cache_info() -> dict[str, int]:
    """Cache statistics: ``{"size", "hits", "misses"}`` (process-wide)."""
    return {"size": len(_CACHE), "hits": _HITS, "misses": _MISSES}


def clear_kernel_cache() -> None:
    """Drop every cached kernel and zero the hit/miss counters."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def evict_kernel(fingerprint: str) -> int:
    """Quarantine: drop every cached variant of one netlist's kernel.

    Removes all cache entries (plain/patchable/incremental) whose
    netlist fingerprint matches and returns how many were dropped.  The
    supervised serving tier calls this when a response check convicts a
    worker's output — the compiled artefact can no longer be trusted, so
    the next consumer recompiles from the netlist instead of sharing the
    possibly-corrupted kernel through the process-wide cache.
    """
    victims = [key for key in _CACHE if key[0] == fingerprint]
    for key in victims:
        del _CACHE[key]
    return len(victims)


class PackedFaultPlan:
    """Per-lane fault assignment for one fault-parallel packed sweep.

    A plan gives each bit-lane its own fault (or none — the golden
    lane): :meth:`stick` forces a wire to a constant on selected lanes,
    :meth:`upset` flips a register's state on selected lanes at the
    start of one cycle.  The compiled engines consume the packed
    representations (:attr:`masks`, :meth:`seu_lane_flips`); the plan
    also implements the interpreter overlay protocol (``wires`` /
    ``patch`` / ``seu``), so the same plan runs on ``backend="interp"``
    lane for lane — that is how the engines are cross-checked.
    """

    def __init__(self, lanes: int) -> None:
        if lanes < 1:
            raise ValueError("a fault plan needs at least one lane")
        self.lanes = lanes
        self.n_words = words_for(lanes)
        self._force0: dict[Wire, np.ndarray] = {}
        self._force1: dict[Wire, np.ndarray] = {}
        self._seu: dict[int, dict[Wire, np.ndarray]] = {}
        self._masks: dict[Wire, tuple[int, int]] | None = None

    def _lane_mask(self, lanes: Any) -> np.ndarray:
        sel = np.zeros(self.lanes, dtype=bool)
        sel[lanes] = True
        return sel

    def stick(self, wire: Wire, value: bool, lanes: Any) -> None:
        """Force ``wire`` to ``value`` on the selected lanes.

        ``lanes`` is any NumPy index expression over the lane axis
        (boolean mask, index array, slice...).
        """
        sel = self._lane_mask(lanes)
        target = self._force1 if value else self._force0
        prior = target.get(wire)
        target[wire] = sel if prior is None else (prior | sel)
        self._masks = None

    def upset(self, register_q: Wire, cycle: int, lanes: Any) -> None:
        """Flip register ``register_q`` on the selected lanes at ``cycle``."""
        sel = self._lane_mask(lanes)
        per_cycle = self._seu.setdefault(cycle, {})
        prior = per_cycle.get(register_q)
        per_cycle[register_q] = sel if prior is None else (prior ^ sel)

    # -- compiled-engine view ------------------------------------------ #

    @property
    def masks(self) -> dict[Wire, tuple[int, int]]:
        """Wire → packed ``(keep, force)`` masks for the patchable kernel."""
        if self._masks is None:
            masks: dict[Wire, tuple[int, int]] = {}
            for w in frozenset(self._force0) | frozenset(self._force1):
                f0 = self._force0.get(w)
                f1 = self._force1.get(w)
                forced = (
                    f1
                    if f0 is None
                    else (f0 if f1 is None else (f0 | f1))
                )
                assert forced is not None
                keep = pack_lanes(~forced)
                force = pack_lanes(f1) if f1 is not None else 0
                masks[w] = (keep, force)
            self._masks = masks
        return self._masks

    def seu_lane_flips(self, cycle: int) -> dict[Wire, np.ndarray]:
        """Register Q → boolean lane-flip mask for ``cycle``."""
        return self._seu.get(cycle, {})

    # -- interpreter overlay protocol ---------------------------------- #

    @property
    def wires(self) -> frozenset[Wire]:
        return frozenset(self._force0) | frozenset(self._force1)

    def patch(self, wire: Wire, value: np.ndarray, values: Any) -> np.ndarray:
        if value.shape[0] != self.lanes:
            raise ValueError(
                f"fault plan has {self.lanes} lanes but wire {wire} "
                f"carries {value.shape[0]}"
            )
        out = value
        f0 = self._force0.get(wire)
        if f0 is not None:
            out = out & ~f0
        f1 = self._force1.get(wire)
        if f1 is not None:
            out = out | f1
        return out

    def seu(self, cycle: int) -> Sequence[Wire]:
        # Whole-lane flips are expressed through seu_lane_flips(); the
        # classic protocol hook reports nothing so an engine that only
        # understands it cannot silently half-apply the plan.
        return ()

    def __iter__(self) -> Iterator[Wire]:  # pragma: no cover - convenience
        return iter(self.wires)


def stuck_masks_from_overlay(
    stuck: Mapping[Wire, bool], ones: int
) -> dict[Wire, tuple[int, int]]:
    """Uniform (all-lane) stuck-at assignments as packed patch masks.

    ``ones`` is the all-lanes-set mask (:func:`ones_mask` of the batch).
    """
    return {w: (0, ones if v else 0) for w, v in stuck.items()}
