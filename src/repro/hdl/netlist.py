"""Netlist construction: wires, buses, gates and registers.

A :class:`Netlist` is a flat directed acyclic graph of primitive gates
(:class:`repro.hdl.gates.Op`).  Word-level values travel on :class:`Bus`
objects, which are ordered lists of wires, least-significant bit first.

Construction performs the two cheap optimisations every synthesis front-end
applies — constant folding and structural hashing (common-subexpression
elimination) — so the resource counts reported by :mod:`repro.fpga` are
comparable to what a real tool would emit rather than inflated by duplicate
logic.

Registers make the netlist sequential: a register's Q output is a leaf for
combinational levelisation, and :class:`repro.hdl.simulator.
SequentialSimulator` advances all register states on each clock.  Inserting
one register bank per cascade stage is exactly the pipelining transformation
described in §II-B of the paper ("Pipeline registers can simply be inserted
between stages").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.hdl.gates import GATE_ARITY, Op

__all__ = ["Wire", "Bus", "Gate", "Register", "Netlist"]

#: A wire is an index into ``Netlist.gates`` — the gate that drives it.
Wire = int


@dataclass(frozen=True)
class Gate:
    """A single netlist node: the driver of one wire."""

    op: Op
    fanin: tuple[Wire, ...]
    name: str | None = None


@dataclass(frozen=True)
class Register:
    """A D flip-flop: ``q`` is the REG wire, ``d`` its next-state input."""

    q: Wire
    d: Wire
    init: bool = False


class Bus:
    """An ordered, immutable group of wires, LSB first.

    Buses are how word-level components exchange multi-bit values.  Slicing
    a bus returns a bus; indexing returns a single wire.
    """

    __slots__ = ("wires",)

    def __init__(self, wires: Iterable[Wire]) -> None:
        self.wires: tuple[Wire, ...] = tuple(wires)

    @property
    def width(self) -> int:
        return len(self.wires)

    def __len__(self) -> int:
        return len(self.wires)

    def __iter__(self) -> Iterator[Wire]:
        return iter(self.wires)

    def __getitem__(self, idx: int | slice) -> "Wire | Bus":
        if isinstance(idx, slice):
            return Bus(self.wires[idx])
        return self.wires[idx]

    def __add__(self, other: "Bus") -> "Bus":
        """Concatenate: ``self`` supplies the low bits."""
        return Bus(self.wires + tuple(other))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bus) and self.wires == other.wires

    def __hash__(self) -> int:
        return hash(self.wires)

    def __repr__(self) -> str:
        return f"Bus({list(self.wires)})"


class Netlist:
    """A mutable gate-level circuit under construction.

    Attributes
    ----------
    gates:
        ``gates[w]`` is the :class:`Gate` driving wire ``w``.
    registers:
        All D flip-flops, in creation order.
    inputs / outputs:
        Named primary input and output buses.
    """

    def __init__(self, name: str = "top", *, fold: bool = True, cse: bool = True) -> None:
        self.name = name
        self.fold = fold  #: apply constant folding / peepholes in :meth:`gate`
        self.cse = cse  #: apply structural hashing (CSE) in :meth:`gate`
        self.gates: list[Gate] = []
        self.registers: list[Register] = []
        self.inputs: dict[str, Bus] = {}
        self.outputs: dict[str, Bus] = {}
        self._cse: dict[tuple[Op, tuple[Wire, ...]], Wire] = {}
        self._const0: Wire | None = None
        self._const1: Wire | None = None
        self._level_cache: list[int] | None = None
        #: Monotonic mutation counter; consumers (fingerprint, compiled
        #: kernels) combine it with structure sizes to detect staleness.
        self._version: int = 0
        self._fingerprint_cache: tuple[object, str] | None = None

    # ------------------------------------------------------------------ #
    # construction

    def _new_wire(self, op: Op, fanin: tuple[Wire, ...], name: str | None = None) -> Wire:
        self.gates.append(Gate(op, fanin, name))
        self._level_cache = None
        self._version += 1
        return len(self.gates) - 1

    def const(self, value: bool | int) -> Wire:
        """Return the shared constant-0 or constant-1 wire."""
        if value:
            if self._const1 is None:
                self._const1 = self._new_wire(Op.CONST1, ())
            return self._const1
        if self._const0 is None:
            self._const0 = self._new_wire(Op.CONST0, ())
        return self._const0

    def const_bus(self, value: int, width: int) -> Bus:
        """A bus holding the binary encoding of ``value`` (LSB first)."""
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        return Bus(self.const((value >> b) & 1) for b in range(width))

    def input(self, name: str, width: int = 1) -> Bus:
        """Declare a primary input bus."""
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        bus = Bus(self._new_wire(Op.INPUT, (), name=f"{name}[{b}]") for b in range(width))
        self.inputs[name] = bus
        return bus

    def output(self, name: str, bus: Bus | Wire) -> None:
        """Declare a primary output."""
        if name in self.outputs:
            raise ValueError(f"duplicate output {name!r}")
        if isinstance(bus, int):
            bus = Bus((bus,))
        self.outputs[name] = bus
        self._version += 1

    def register(self, d: Wire, init: bool = False, name: str | None = None) -> Wire:
        """Insert a D flip-flop driven by ``d``; returns the Q wire."""
        q = self._new_wire(Op.REG, (), name=name)
        self.registers.append(Register(q=q, d=d, init=init))
        return q

    def register_bus(self, bus: Bus, init: int = 0, name: str | None = None) -> Bus:
        """Register every bit of ``bus`` (one pipeline stage boundary)."""
        return Bus(
            self.register(w, init=bool((init >> i) & 1),
                          name=None if name is None else f"{name}[{i}]")
            for i, w in enumerate(bus)
        )

    def gate(self, op: Op, *fanin: Wire, name: str | None = None) -> Wire:
        """Add a primitive gate with constant folding and CSE.

        Folding keeps the netlist honest: a comparator against constant 0,
        say, collapses to a constant instead of inflating LUT counts.
        Either optimisation can be disabled per netlist (``fold=False`` /
        ``cse=False`` at construction) — that is how the standalone
        :mod:`repro.hdl.passes` isolate one transformation at a time.
        """
        if len(fanin) != GATE_ARITY[op]:
            raise ValueError(f"{op} expects {GATE_ARITY[op]} fanins, got {len(fanin)}")
        if self.fold:
            folded = self._fold(op, fanin)
            if folded is not None:
                return folded
        if not self.cse:
            return self._new_wire(op, fanin, name)
        key = self._cse_key(op, fanin)
        hit = self._cse.get(key)
        if hit is not None:
            return hit
        w = self._new_wire(op, fanin, name)
        self._cse[key] = w
        return w

    @staticmethod
    def _cse_key(op: Op, fanin: tuple[Wire, ...]) -> tuple[Op, tuple[Wire, ...]]:
        # AND/OR/XOR/NAND/NOR/XNOR are commutative: canonicalise operand order.
        if op in (Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR, Op.XNOR) and fanin[0] > fanin[1]:
            fanin = (fanin[1], fanin[0])
        return (op, fanin)

    def _is_const(self, w: Wire) -> bool | None:
        op = self.gates[w].op
        if op is Op.CONST0:
            return False
        if op is Op.CONST1:
            return True
        return None

    def _fold(self, op: Op, fanin: tuple[Wire, ...]) -> Wire | None:
        """Peephole constant folding / identity simplification."""
        consts = tuple(self._is_const(w) for w in fanin)
        if op is Op.BUF:
            return fanin[0]
        if op is Op.NOT:
            if consts[0] is not None:
                return self.const(not consts[0])
            # double negation
            g = self.gates[fanin[0]]
            if g.op is Op.NOT:
                return g.fanin[0]
            return None
        if op is Op.MUX:
            sel, a, b = fanin
            if consts[0] is not None:
                return b if consts[0] else a
            if a == b:
                return a
            if consts[1] is False and consts[2] is True:
                return sel
            return None
        if op in (Op.AND, Op.NAND):
            a, b = fanin
            out: Wire | None = None
            if consts[0] is False or consts[1] is False:
                out = self.const(0)
            elif consts[0] is True:
                out = b
            elif consts[1] is True:
                out = a
            elif a == b:
                out = a
            if out is not None:
                return out if op is Op.AND else self.gate(Op.NOT, out)
            return None
        if op in (Op.OR, Op.NOR):
            a, b = fanin
            out = None
            if consts[0] is True or consts[1] is True:
                out = self.const(1)
            elif consts[0] is False:
                out = b
            elif consts[1] is False:
                out = a
            elif a == b:
                out = a
            if out is not None:
                return out if op is Op.OR else self.gate(Op.NOT, out)
            return None
        if op in (Op.XOR, Op.XNOR):
            a, b = fanin
            out = None
            if a == b:
                out = self.const(0)
            elif consts[0] is False:
                out = b
            elif consts[1] is False:
                out = a
            elif consts[0] is True:
                out = self.gate(Op.NOT, b)
            elif consts[1] is True:
                out = self.gate(Op.NOT, a)
            if out is not None:
                return out if op is Op.XOR else self.gate(Op.NOT, out)
            return None
        if op is Op.ANDN:
            return self.gate(Op.AND, fanin[0], self.gate(Op.NOT, fanin[1]))
        if op is Op.ORN:
            return self.gate(Op.OR, fanin[0], self.gate(Op.NOT, fanin[1]))
        return None

    # ------------------------------------------------------------------ #
    # analysis

    def levels(self) -> list[int]:
        """Combinational level of each wire (0 for leaves).

        Registers, inputs and constants are level 0; a gate is one more
        than its deepest fanin.  Because wires are created in topological
        order (fanins always precede the gate), a single forward pass
        suffices.
        """
        if self._level_cache is not None:
            return self._level_cache
        lev = [0] * len(self.gates)
        for w, g in enumerate(self.gates):
            if g.fanin:
                lev[w] = 1 + max(lev[f] for f in g.fanin)
        self._level_cache = lev
        return lev

    @property
    def depth(self) -> int:
        """Levelised logic depth — the unit-delay critical path length."""
        observable = [w for bus in self.outputs.values() for w in bus]
        observable += [r.d for r in self.registers]
        if not observable:
            return 0
        lev = self.levels()
        return max(lev[w] for w in observable)

    def gate_counts(self) -> dict[Op, int]:
        """Logic gate population by type (excludes leaves)."""
        counts: dict[Op, int] = {}
        for g in self.gates:
            if g.op in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1):
                continue
            counts[g.op] = counts.get(g.op, 0) + 1
        return counts

    @property
    def num_logic_gates(self) -> int:
        return sum(self.gate_counts().values())

    @property
    def num_live_gates(self) -> int:
        """Logic gates in the observable cone (what a sweep would keep).

        Generator code leaves dead fragments behind — e.g. the high bits
        of a subtractor whose output is truncated — which construction
        cannot remove; resource-style accounting should use this count.
        """
        live = self.live_wires()
        return sum(
            1
            for w in live
            if self.gates[w].op not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
        )

    @property
    def num_registers(self) -> int:
        return len(self.registers)

    def fanout_counts(self) -> list[int]:
        """Number of gate/register sinks of each wire."""
        fo = [0] * len(self.gates)
        for g in self.gates:
            for f in g.fanin:
                fo[f] += 1
        for r in self.registers:
            fo[r.d] += 1
        return fo

    def live_wires(self) -> set[Wire]:
        """Wires in the transitive fanin cone of outputs and register Ds."""
        stack = [w for bus in self.outputs.values() for w in bus]
        stack += [r.d for r in self.registers] + [r.q for r in self.registers]
        seen: set[Wire] = set()
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            stack.extend(self.gates[w].fanin)
        return seen

    def check(self) -> None:
        """Structural sanity: fanins precede gates (acyclic), buses intact."""
        for w, g in enumerate(self.gates):
            for f in g.fanin:
                if not (0 <= f < w):
                    raise ValueError(f"gate {w} has non-causal fanin {f}")
        for r in self.registers:
            if not (0 <= r.d < len(self.gates)):
                raise ValueError("register D out of range")
        for name, bus in {**self.inputs, **self.outputs}.items():
            for w in bus:
                if not (0 <= w < len(self.gates)):
                    raise ValueError(f"bus {name!r} references missing wire {w}")

    def summary(self) -> dict[str, int]:
        """A compact structural report used by tests and benchmarks."""
        return {
            "logic_gates": self.num_logic_gates,
            "registers": self.num_registers,
            "depth": self.depth,
            "input_bits": sum(b.width for b in self.inputs.values()),
            "output_bits": sum(b.width for b in self.outputs.values()),
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"<Netlist {self.name!r}: {s['logic_gates']} gates, "
            f"{s['registers']} regs, depth {s['depth']}>"
        )
