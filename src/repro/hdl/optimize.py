"""Netlist optimisation passes.

Construction-time folding and CSE (in :mod:`repro.hdl.netlist`) already
keep circuits lean; these passes clean up what construction cannot see:

* :func:`sweep` — dead-logic elimination: rebuilds the netlist keeping
  only the transitive fanin of outputs and register D pins.  Generator
  code frequently creates wires that later muxes fold away; sweeping
  them keeps resource counts honest.
* :func:`statistics_delta` — before/after comparison helper used by the
  benchmarks' mapping ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist

__all__ = ["sweep", "SweepStats", "statistics_delta"]


@dataclass(frozen=True)
class SweepStats:
    """What dead-logic elimination removed."""

    gates_before: int
    gates_after: int
    registers_before: int
    registers_after: int

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    @property
    def registers_removed(self) -> int:
        return self.registers_before - self.registers_after


def sweep(nl: Netlist) -> tuple[Netlist, SweepStats]:
    """Return a new netlist containing only live logic.

    Liveness: the transitive fanin cone of the primary outputs, closed
    over register Q→D dependencies (a live register keeps its D cone
    live).  Inputs are preserved even when unused so the port list — and
    therefore any exported Verilog module interface — is unchanged.
    """
    nl.check()
    # Liveness fixpoint: start from primary outputs; a register is live
    # only when its Q is reachable, and a live register makes its D cone
    # live (which may in turn wake further registers).
    live: set[int] = set()
    stack = [w for bus in nl.outputs.values() for w in bus]
    keep_regs: list = []
    pending = list(nl.registers)
    while True:
        while stack:
            w = stack.pop()
            if w in live:
                continue
            live.add(w)
            stack.extend(nl.gates[w].fanin)
        woke = [r for r in pending if r.q in live]
        if not woke:
            break
        pending = [r for r in pending if r.q not in live]
        keep_regs.extend(woke)
        stack.extend(r.d for r in woke)
    keep_regs.sort(key=lambda r: r.q)

    out = Netlist(name=nl.name)
    mapping: dict[int, int] = {}

    for name, bus in nl.inputs.items():
        new_bus = out.input(name, bus.width)
        for old, new in zip(bus, new_bus):
            mapping[old] = new

    reg_by_q = {r.q: r for r in keep_regs}
    # First pass: create REG placeholders for live registers (their Q
    # wires may be referenced before their D cones are rebuilt).
    for r in keep_regs:
        q = out._new_wire(Op.REG, (), name=nl.gates[r.q].name)
        mapping[r.q] = q

    for w, g in enumerate(nl.gates):
        if w not in live or w in mapping:
            continue
        if g.op is Op.CONST0:
            mapping[w] = out.const(0)
        elif g.op is Op.CONST1:
            mapping[w] = out.const(1)
        elif g.op is Op.INPUT:
            raise AssertionError("inputs already mapped")
        elif g.op is Op.REG:
            continue  # dead register Q that somehow stayed live-checked
        else:
            mapping[w] = out.gate(g.op, *(mapping[f] for f in g.fanin), name=g.name)

    from repro.hdl.netlist import Register

    for r in keep_regs:
        out.registers.append(Register(q=mapping[r.q], d=mapping[r.d], init=r.init))

    for name, bus in nl.outputs.items():
        out.output(name, Bus(mapping[w] for w in bus))

    stats = SweepStats(
        gates_before=nl.num_logic_gates,
        gates_after=out.num_logic_gates,
        registers_before=nl.num_registers,
        registers_after=out.num_registers,
    )
    return out, stats


def statistics_delta(before: Netlist, after: Netlist) -> dict[str, int]:
    """Summary-to-summary difference (positive = reduction)."""
    a, b = before.summary(), after.summary()
    return {key: a[key] - b[key] for key in a}
