"""Legacy netlist-optimisation entry points (now thin pass wrappers).

The optimisation machinery lives in :mod:`repro.hdl.passes`: dead-logic
elimination was migrated into :class:`~repro.hdl.passes.SweepPass`, and
construction-time folding/CSE gained standalone pass forms
(``fold``/``dedupe``) alongside the new rewriting passes.  This module
keeps the original one-shot API — :func:`sweep` and
:class:`SweepStats` — for callers that only want dead-logic removal;
new code should run a :class:`~repro.hdl.passes.PassManager` (or the
:func:`repro.flow.synthesize` facade) instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.netlist import Netlist

__all__ = ["sweep", "SweepStats", "statistics_delta"]


@dataclass(frozen=True)
class SweepStats:
    """What dead-logic elimination removed."""

    gates_before: int
    gates_after: int
    registers_before: int
    registers_after: int

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    @property
    def registers_removed(self) -> int:
        return self.registers_before - self.registers_after


def sweep(nl: Netlist) -> tuple[Netlist, SweepStats]:
    """Return a new netlist containing only live logic.

    Delegates to :class:`repro.hdl.passes.SweepPass`; see its docstring
    for the liveness rules.  Kept as a convenience wrapper because many
    call sites want exactly one transformation and its before/after
    stats.
    """
    from repro.hdl.passes import SweepPass

    out = SweepPass().run(nl)
    stats = SweepStats(
        gates_before=nl.num_logic_gates,
        gates_after=out.num_logic_gates,
        registers_before=nl.num_registers,
        registers_after=out.num_registers,
    )
    return out, stats


def statistics_delta(before: Netlist, after: Netlist) -> dict[str, int]:
    """Summary-to-summary difference (positive = reduction)."""
    a, b = before.summary(), after.summary()
    return {key: a[key] - b[key] for key in a}
