"""Vectorised netlist simulation.

Two engines are provided:

* :class:`CombinationalSimulator` — single-pass evaluation of the levelised
  gate list.  Register outputs are held at a supplied (or reset) state, so
  a purely combinational circuit needs no special handling.
* :class:`SequentialSimulator` — cycle-accurate clocked simulation: each
  :meth:`~SequentialSimulator.step` evaluates the combinational fabric,
  samples every register's D input and advances the state.  This is what
  demonstrates the paper's pipelining claim (latency ``n``, then one
  permutation per clock).

Both engines are *batched*: every wire carries a NumPy boolean vector, so a
single sweep over the gate list simulates an arbitrary number of independent
input vectors (SIMD over Monte-Carlo lanes).  Word values at the boundary
are plain Python integers of unlimited width, because the index bus exceeds
64 bits for n ≥ 21 (``log2(21!) ≈ 65.5``).

Fault injection
---------------
Both engines accept an optional *overlay* — a non-invasive fault model
applied during the sweep, leaving the netlist untouched.  An overlay is
any object with three members (see :class:`repro.robustness.faults.
FaultOverlay` for the concrete implementation):

* ``wires`` — a container of wire indices whose value must be patched;
* ``patch(wire, value, values)`` — returns the faulty lane for ``wire``
  given its healthy ``value`` and the table of already-computed lanes
  (how bridging faults read their aggressor wire);
* ``seu(cycle)`` — register Q wires whose *state* flips at the start of
  the given clock cycle (single-event upsets; sequential engine only).

Because wires are evaluated in topological order, patching a wire as it
is computed propagates the fault to every downstream gate exactly as a
physical defect would.

Probing
-------
Both engines also accept an optional *probe* — an observability tap (see
:class:`repro.obs.probes.SimProbe`) whose ``record_sweep(values, batch)``
method is called once per combinational sweep with the full wire-value
table.  Probes record watched-bus samples, per-wire transitions and
gate-evaluation counts, and export VCD waveforms; a simulator without a
probe pays exactly one ``is None`` test per sweep.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.hdl.gates import Op, evaluate_op
from repro.hdl.netlist import Netlist

__all__ = [
    "bits_from_ints",
    "ints_from_bits",
    "CombinationalSimulator",
    "SequentialSimulator",
]


def bits_from_ints(values: Sequence[int], width: int) -> list[np.ndarray]:
    """Explode integers into ``width`` boolean lanes, LSB first.

    Uses object-dtype arithmetic so arbitrarily wide buses work; the cost
    is linear in ``width × batch`` which is negligible next to gate
    evaluation.
    """
    arr = np.asarray(list(values), dtype=object)
    if arr.ndim != 1:
        raise ValueError("values must be one-dimensional")
    for v in arr:
        if v < 0:
            raise ValueError("bus values must be non-negative")
        if int(v).bit_length() > width:
            raise ValueError(f"value {v} does not fit in {width} bits")
    return [((arr >> b) & 1).astype(bool) for b in range(width)]


def ints_from_bits(bits: Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`bits_from_ints`; returns an object array of ints."""
    if not bits:
        raise ValueError("empty bit list")
    acc = np.zeros(bits[0].shape, dtype=object)
    for b, lane in enumerate(bits):
        acc = acc + lane.astype(object) * (1 << b)
    return acc


class CombinationalSimulator:
    """Evaluate a netlist's combinational fabric on a batch of inputs."""

    def __init__(self, netlist: Netlist, probe: Any = None) -> None:
        netlist.check()
        self.netlist = netlist
        self.probe = probe
        self._wire_values: list[np.ndarray | None] = []

    def run(
        self,
        inputs: Mapping[str, int | Sequence[int]],
        reg_state: Mapping[int, np.ndarray] | None = None,
        overlay: Any = None,
    ) -> dict[str, np.ndarray]:
        """Evaluate outputs for a batch of input words.

        Parameters
        ----------
        inputs:
            Maps input-bus name to a scalar or sequence of integers.  All
            sequences must share one batch size; scalars broadcast.
        reg_state:
            Optional boolean lane per register Q wire; registers read their
            ``init`` value when omitted.
        overlay:
            Optional fault overlay (see module docstring); faulty wires
            are patched as the sweep reaches them, so downstream logic
            sees the defective value.

        Returns
        -------
        dict
            Output-bus name → object array of integers (batch-sized).
        """
        nl = self.netlist
        missing = set(nl.inputs) - set(inputs)
        if missing:
            raise ValueError(f"missing inputs: {sorted(missing)}")
        extra = set(inputs) - set(nl.inputs)
        if extra:
            raise ValueError(f"unknown inputs: {sorted(extra)}")

        batch = 1
        seqs: dict[str, Sequence[int]] = {}
        for name, val in inputs.items():
            if isinstance(val, (int, np.integer)):
                seqs[name] = [int(val)]
            else:
                seqs[name] = list(val)
                if len(seqs[name]) != 1:
                    if batch != 1 and len(seqs[name]) != batch:
                        raise ValueError("inconsistent batch sizes")
                    batch = max(batch, len(seqs[name]))

        values: list[np.ndarray | None] = [None] * len(nl.gates)
        for name, bus in nl.inputs.items():
            lanes = bits_from_ints(seqs[name], bus.width)
            for wire, lane in zip(bus, lanes):
                if lane.shape[0] == 1 and batch != 1:
                    lane = np.broadcast_to(lane, (batch,))
                values[wire] = np.ascontiguousarray(lane)

        faulty = overlay.wires if overlay is not None else ()
        init_state = {r.q: r.init for r in nl.registers}
        for w, g in enumerate(nl.gates):
            if values[w] is None:
                if g.op is Op.CONST0:
                    values[w] = np.zeros(batch, dtype=bool)
                elif g.op is Op.CONST1:
                    values[w] = np.ones(batch, dtype=bool)
                elif g.op is Op.REG:
                    if reg_state is not None and w in reg_state:
                        lane = np.asarray(reg_state[w], dtype=bool)
                        values[w] = (
                            np.broadcast_to(lane, (batch,))
                            if lane.shape[0] == 1
                            else lane
                        )
                    else:
                        values[w] = np.full(batch, init_state[w], dtype=bool)
                elif g.op is Op.INPUT:
                    raise ValueError(f"input wire {w} ({g.name}) left undriven")
                else:
                    values[w] = evaluate_op(g.op, tuple(values[f] for f in g.fanin))
            if w in faulty:
                values[w] = overlay.patch(w, values[w], values)

        self._wire_values = values  # exposed for SequentialSimulator / debug
        if self.probe is not None:
            self.probe.record_sweep(values, batch)
        return {
            name: ints_from_bits([values[w] for w in bus])
            for name, bus in nl.outputs.items()
        }


class SequentialSimulator:
    """Clocked simulation with batched register state.

    Each lane of the batch is an independent copy of the circuit — useful
    for running many Monte-Carlo streams through one pipelined shuffle
    circuit simultaneously.
    """

    def __init__(
        self, netlist: Netlist, batch: int = 1, overlay: Any = None, probe: Any = None
    ) -> None:
        self.comb = CombinationalSimulator(netlist, probe=probe)
        self.netlist = netlist
        self.batch = batch
        self.overlay = overlay
        self.probe = probe
        self.cycle = 0
        self.state: dict[int, np.ndarray] = {}
        self.reset()

    def reset(self) -> None:
        """Load every register with its init value; rewind the cycle count."""
        self.cycle = 0
        self.state = {
            r.q: np.full(self.batch, r.init, dtype=bool) for r in self.netlist.registers
        }

    def step(self, inputs: Mapping[str, int | Sequence[int]]) -> dict[str, np.ndarray]:
        """Advance one clock: evaluate, emit outputs, latch register Ds.

        With an overlay attached, any SEU scheduled for this cycle flips
        the stored register state *before* evaluation; the corrupted
        value then propagates (and is re-latched downstream) exactly
        once — a transient upset, not a stuck bit.
        """
        if self.overlay is not None:
            for q in self.overlay.seu(self.cycle):
                self.state[q] = np.logical_not(self.state[q])
        outputs = self.comb.run(inputs, reg_state=self.state, overlay=self.overlay)
        wire_values = self.comb._wire_values
        next_state: dict[int, np.ndarray] = {}
        for r in self.netlist.registers:
            lane = wire_values[r.d]
            if lane.shape[0] != self.batch:
                lane = np.broadcast_to(lane, (self.batch,)).copy()
            next_state[r.q] = lane
        self.state = next_state
        self.cycle += 1
        return outputs

    def run_stream(
        self, input_stream: Sequence[Mapping[str, int | Sequence[int]]]
    ) -> list[dict[str, np.ndarray]]:
        """Feed a sequence of per-cycle inputs; collect per-cycle outputs."""
        return [self.step(inp) for inp in input_stream]
