"""Vectorised netlist simulation.

Every simulator ``backend`` knob resolves through the engine registry
(:mod:`repro.hdl.engine`).  This module defines and registers two of
the builtin engines; the third lives in :mod:`repro.hdl.vector`:

* ``"interp"`` (:class:`InterpEngine`) — single-pass interpretation of
  the levelised gate list, one NumPy boolean array per wire.  Fully
  general: supports probes and every fault-overlay kind.
* ``"compiled"`` (:class:`CompiledEngine`) — Verilator-style
  compiled-code simulation (:mod:`repro.hdl.compile`): the netlist is
  code-generated once into straight-line Python over bit-packed integer
  lanes (one *bit* per Monte-Carlo lane), giving order-of-magnitude
  speedups on batched sweeps.  Bit-identical to the interpreter.
* ``"vector"`` (:class:`~repro.hdl.vector.VectorEngine`) — the same
  kernels over NumPy ``uint64`` word arrays, breaking the 63-lane
  quantum for wide sweeps (fault campaigns, bulk serving).
* ``"auto"`` (default) — the highest-priority engine whose declared
  capabilities accept the request (see
  :func:`repro.hdl.engine.resolve_backend`); with the builtin
  priorities that is compiled whenever the request can be served by
  it, interpreter otherwise.  The compiled engine cannot host a probe
  (it keeps no wire-value table) nor arbitrary overlays; stuck-at
  overlays *are* supported, compiled to per-lane masks.  The fallback
  rules are:

  ====================================  ==================
  request                               engine under auto
  ====================================  ==================
  no probe, no overlay                  compiled
  stuck-at overlay (``FaultOverlay``)   compiled (masks)
  :class:`~repro.hdl.compile.
  PackedFaultPlan` overlay              compiled (masks)
  bridging overlay                      interpreter
  any probe attached                    interpreter
  ====================================  ==================

Simulator classes:

* :class:`CombinationalSimulator` — single-sweep evaluation.  Register
  outputs are held at a supplied (or reset) state, so a purely
  combinational circuit needs no special handling.
* :class:`SequentialSimulator` — cycle-accurate clocked simulation: each
  :meth:`~SequentialSimulator.step` evaluates the combinational fabric,
  samples every register's D input and advances the state.  This is what
  demonstrates the paper's pipelining claim (latency ``n``, then one
  permutation per clock).

Both engines are *batched*: a single sweep simulates an arbitrary number
of independent input vectors (SIMD over Monte-Carlo lanes).  Word values
at the boundary are plain Python integers of unlimited width, because
the index bus exceeds 64 bits for n ≥ 21 (``log2(21!) ≈ 65.5``).

Fault injection
---------------
Both simulators accept an optional *overlay* — a non-invasive fault
model applied during the sweep, leaving the netlist untouched.  An
overlay is any object with three members (see :class:`repro.robustness.
faults.FaultOverlay` for the concrete implementation):

* ``wires`` — a container of wire indices whose value must be patched;
* ``patch(wire, value, values)`` — returns the faulty lane for ``wire``
  given its healthy ``value`` and the table of already-computed lanes
  (how bridging faults read their aggressor wire);
* ``seu(cycle)`` — register Q wires whose *state* flips at the start of
  the given clock cycle (single-event upsets; sequential engine only).

Overlays exposing ``stuck_assignments()`` (a wire → bool mapping, or
``None`` when not expressible) can run on the compiled engine; per-lane
plans (:class:`~repro.hdl.compile.PackedFaultPlan`) additionally carry
``seu_lane_flips(cycle)`` for lane-selective upsets, which both engines
honour.

Because wires are evaluated in topological order, patching a wire as it
is computed propagates the fault to every downstream gate exactly as a
physical defect would.

Probing
-------
Both simulators also accept an optional *probe* — an observability tap
(see :class:`repro.obs.probes.SimProbe`) whose
``record_sweep(values, batch)`` method is called once per combinational
sweep with the full wire-value table.  A probe forces the interpreter
(the compiled engine never materialises the table); a simulator without
a probe pays exactly one ``is None`` test per sweep.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.hdl.compile import (
    SWEEP_LANES,
    PackedFaultPlan,
    compile_netlist,
    ones_mask,
    pack_lanes,
    stuck_masks_from_overlay,
    unpack_lanes,
    words_for,
)
from repro.hdl.engine import (
    BACKENDS,
    Engine,
    EngineCapabilities,
    register_engine,
    require_backend,
    resolve_backend,
)
from repro.hdl.gates import Op, evaluate_op
from repro.hdl.netlist import Netlist
from repro.obs import metrics as _metrics

__all__ = [
    "bits_from_ints",
    "ints_from_bits",
    "packed_bit_columns",
    "BatchEntry",
    "CombinationalSimulator",
    "SequentialSimulator",
    "InterpEngine",
    "CompiledEngine",
    "BACKENDS",
]

_SWEEPS = _metrics.REGISTRY.counter(
    "repro_sim_sweeps_total",
    "combinational sweeps evaluated",
    ("engine",),
)
_SWEEP_LANES = _metrics.REGISTRY.histogram(
    "repro_sim_lanes_per_sweep",
    "Monte-Carlo lanes per combinational sweep",
    ("engine",),
    buckets=(1.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0),
)


def bits_from_ints(
    values: "Sequence[int] | np.ndarray", width: int
) -> list[np.ndarray]:
    """Explode integers into ``width`` boolean lanes, LSB first.

    Batches whose values fit a machine word (``width <= 64``) are
    exploded with vectorised ``uint64`` shifts; wider buses — the index
    bus for n ≥ 21 exceeds 64 bits — fall back to object-dtype bigint
    arithmetic.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if arr.dtype.kind == "f" and not isinstance(values, np.ndarray):
        # an int list mixing values above int64 with smaller ones
        # promotes to lossy float64; rebuild exactly from the originals
        arr = np.array([int(v) for v in values], dtype=object)
    if width <= 64 and arr.dtype.kind in "iu" and arr.size:
        lo = int(arr.min())
        if lo < 0:
            raise ValueError("bus values must be non-negative")
        hi = int(arr.max())
        if hi.bit_length() > width:
            raise ValueError(f"value {hi} does not fit in {width} bits")
        u = arr.astype(np.uint64)
        one = np.uint64(1)
        return [((u >> np.uint64(b)) & one).astype(bool) for b in range(width)]
    obj = arr.astype(object)
    for v in obj:
        if v < 0:
            raise ValueError("bus values must be non-negative")
        if int(v).bit_length() > width:
            raise ValueError(f"value {v} does not fit in {width} bits")
    return [((obj >> b) & 1).astype(bool) for b in range(width)]


def ints_from_bits(bits: Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`bits_from_ints`; returns an integer array.

    Buses up to one byte come back as ``uint8``, machine-word buses as
    ``uint64`` — materialising a Python int object per lane would
    dominate wide sweeps — and wider buses as object arrays of bigints.
    """
    if not bits:
        raise ValueError("empty bit list")

    def _u8(lane: np.ndarray) -> np.ndarray:
        # bool and uint8 share a byte layout, so the common case is free
        return lane.view(np.uint8) if lane.dtype == np.bool_ else lane.astype(np.uint8)

    if len(bits) <= 8:
        byte = _u8(bits[0]).copy()
        for b, lane in enumerate(bits[1:], start=1):
            byte |= _u8(lane) << np.uint8(b)
        return byte
    if len(bits) <= 32:
        word32 = np.zeros(bits[0].shape, dtype=np.uint32)
        for b, lane in enumerate(bits):
            word32 |= lane.astype(np.uint32) << np.uint32(b)
        return word32
    if len(bits) <= 64:
        word = np.zeros(bits[0].shape, dtype=np.uint64)
        for b, lane in enumerate(bits):
            word |= lane.astype(np.uint64) << np.uint64(b)
        return word
    acc = np.zeros(bits[0].shape, dtype=object)
    for b, lane in enumerate(bits):
        acc = acc + lane.astype(object) * (1 << b)
    return acc


def _packed_from_ints(
    values: "Sequence[int] | np.ndarray", width: int, batch: int, ones: int
) -> list[int]:
    """Explode a word batch straight into per-wire packed lane integers.

    The boundary transpose (values × bits → bits × lanes) must not cost
    more than the compiled sweep it feeds: machine-word buses are
    transposed byte-wise with one ``unpackbits``/``packbits`` round
    trip, scalars broadcast to the all-lanes mask, and wide buses fall
    back to the per-wire path.
    """
    arr = values if isinstance(values, np.ndarray) else np.asarray(values)
    n_vals = arr.shape[0] if arr.ndim else 1
    if n_vals == 1 and batch != 1:
        # broadcast: each bit of the single word fills every lane
        return [
            ones if bool(lane[0]) else 0 for lane in bits_from_ints(values, width)
        ]
    if width <= 64 and arr.dtype.kind in "iu" and arr.size:
        lo = int(arr.min())
        if lo < 0:
            raise ValueError("bus values must be non-negative")
        hi = int(arr.max())
        if hi.bit_length() > width:
            raise ValueError(f"value {hi} does not fit in {width} bits")
        cols = packed_bit_columns(arr, width)
        return [int.from_bytes(row.tobytes(), "little") for row in cols]
    return [pack_lanes(lane) for lane in bits_from_ints(values, width)]


def packed_bit_columns(arr: np.ndarray, width: int) -> np.ndarray:
    """Transpose a machine-word batch into packed per-bit lane rows.

    Returns ``(width, ceil(len(arr)/8))`` uint8: row j holds bit j of
    every value, packed little-endian — the byte layout of both packed
    lane integers and the vector engine's word arrays.  ``unpackbits``
    runs over the *contiguous* value-major byte matrix (one C sweep)
    and only the 1-byte-per-bit intermediate is transposed; unpacking
    along the strided transpose instead costs ~9× on wide batches.
    """
    n_vals = arr.shape[0]
    nb = (width + 7) // 8
    size = next(s for s in (1, 2, 4, 8) if s >= nb)
    u = arr.astype(f"<u{size}")
    mat = u.view(np.uint8).reshape(n_vals, size)[:, :nb]
    bits = np.unpackbits(
        np.ascontiguousarray(mat), axis=1, bitorder="little"
    )[:, :width]
    return np.packbits(np.ascontiguousarray(bits.T), axis=1, bitorder="little")


def _fold_bits(bits: np.ndarray) -> np.ndarray:
    """Fold a ``(width, lanes)`` bit matrix into per-lane words.

    Bits are folded a byte-group at a time — ``uint8`` shifts touch an
    eighth of the memory ``uint64`` shifts would — and the result dtype
    tracks the bus width exactly like :func:`ints_from_bits`.
    """
    width = bits.shape[0]
    if width <= 8:
        acc8 = bits[0].copy()
        for i in range(1, width):
            acc8 |= bits[i] << np.uint8(i)
        return acc8
    dtype = np.uint32 if width <= 32 else np.uint64
    value = np.zeros(bits.shape[1], dtype=dtype)
    for k in range(0, width, 8):
        grp = bits[k : k + 8]
        acc8 = grp[0].copy()
        for i in range(1, grp.shape[0]):
            acc8 |= grp[i] << np.uint8(i)
        value |= acc8.astype(dtype) << dtype(k)
    return value


def _ints_from_packed(wire_values: Sequence[int], lanes: int) -> np.ndarray:
    """Per-wire packed lane integers (LSB-first bus) → per-lane words.

    The inverse boundary transpose of :func:`_packed_from_ints`: unpack
    every wire's lanes in one 2-D ``unpackbits``, then fold bits into
    words with :func:`_fold_bits`.  Wide buses fall back to the bigint
    path.
    """
    width = len(wire_values)
    if width > 64:
        return ints_from_bits([unpack_lanes(v, lanes) for v in wire_values])
    nbytes = words_for(lanes) * 8
    buf = b"".join(v.to_bytes(nbytes, "little") for v in wire_values)
    bits = np.unpackbits(
        np.frombuffer(buf, dtype=np.uint8).reshape(width, nbytes),
        axis=1,
        count=lanes,
        bitorder="little",
    )
    return _fold_bits(bits)


def _outputs_from_packed(
    buses: Sequence[tuple[str, list[int]]], lanes: int
) -> dict[str, np.ndarray]:
    """Convert every output bus of a sweep in one boundary transpose.

    A pipelined converter exposes ~n output buses of a few wires each;
    unpacking them one bus at a time pays the ``unpackbits`` dispatch
    cost per bus per cycle.  Concatenating all machine-word buses into
    a single bit matrix amortises that to one call per sweep.
    """
    out: dict[str, np.ndarray] = {}
    narrow: list[tuple[str, list[int]]] = []
    for name, vals in buses:
        if len(vals) > 64:
            out[name] = ints_from_bits([unpack_lanes(v, lanes) for v in vals])
        else:
            narrow.append((name, vals))
    if narrow:
        nbytes = words_for(lanes) * 8
        buf = b"".join(
            v.to_bytes(nbytes, "little") for _, vals in narrow for v in vals
        )
        total = sum(len(vals) for _, vals in narrow)
        bits = np.unpackbits(
            np.frombuffer(buf, dtype=np.uint8).reshape(total, nbytes),
            axis=1,
            count=lanes,
            bitorder="little",
        )
        row = 0
        for name, vals in narrow:
            out[name] = _fold_bits(bits[row : row + len(vals)])
            row += len(vals)
    return out


class PackedOutputs(Mapping[str, np.ndarray]):
    """Deferred bus materialisation for the compiled engine.

    Holds the raw packed lane integers of every output bus and performs
    the packed → per-lane-word boundary transpose the first time a bus
    is read (caching the result).  During pipeline fill, a batch sweep
    never looks at the outputs — deferring the transpose makes those
    cycles cost only the kernel call.  Reading any bus yields exactly
    the array eager materialisation would have produced.
    """

    __slots__ = ("_buses", "_lanes", "_cache")

    def __init__(self, buses: dict[str, list[int]], lanes: int) -> None:
        self._buses = buses
        self._lanes = lanes
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._cache.get(name)
        if arr is None:
            vals = self._buses[name]
            if len(vals) > 64:
                arr = ints_from_bits(
                    [unpack_lanes(v, self._lanes) for v in vals]
                )
            else:
                arr = _ints_from_packed(vals, self._lanes)
            self._cache[name] = arr
        return arr

    def __iter__(self) -> Any:
        return iter(self._buses)

    def __len__(self) -> int:
        return len(self._buses)


def _coerce_inputs(
    nl: Netlist, inputs: Mapping[str, int | Sequence[int]]
) -> tuple[dict[str, "Sequence[int] | np.ndarray"], int]:
    """Validate an input mapping; return per-bus sequences and batch size."""
    missing = set(nl.inputs) - set(inputs)
    if missing:
        raise ValueError(f"missing inputs: {sorted(missing)}")
    extra = set(inputs) - set(nl.inputs)
    if extra:
        raise ValueError(f"unknown inputs: {sorted(extra)}")
    batch = 1
    seqs: dict[str, "Sequence[int] | np.ndarray"] = {}
    for name, val in inputs.items():
        if isinstance(val, (int, np.integer)):
            seqs[name] = [int(val)]
        else:
            # keep ndarray batches as-is: copying 10^4-lane sweeps into
            # Python lists would dominate the compiled kernel
            seqs[name] = val if isinstance(val, np.ndarray) else list(val)
            if len(seqs[name]) != 1:
                if batch != 1 and len(seqs[name]) != batch:
                    raise ValueError("inconsistent batch sizes")
                batch = max(batch, len(seqs[name]))
    return seqs, batch


def _observe_sweep(engine: str, lanes: int) -> None:
    if _metrics.REGISTRY.enabled:
        _SWEEPS.inc(engine=engine)
        _SWEEP_LANES.observe(float(lanes), engine=engine)


class CombinationalSimulator:
    """Evaluate a netlist's combinational fabric on a batch of inputs."""

    def __init__(
        self, netlist: Netlist, probe: Any = None, backend: str = "auto"
    ) -> None:
        require_backend(backend)
        netlist.check()
        self.netlist = netlist
        self.probe = probe
        self.backend = backend
        self._wire_values: list[np.ndarray | None] = []
        # Interpreter scratch, reused across sweeps (satellite: no
        # per-cycle reallocation): the wire-value table and the shared
        # constant lanes, keyed by batch size.
        self._values_buf: list[Any] = []
        self._const_lanes: dict[tuple[int, bool], np.ndarray] = {}

    # -- public API ----------------------------------------------------- #

    def run(
        self,
        inputs: Mapping[str, int | Sequence[int]],
        reg_state: Mapping[int, np.ndarray] | None = None,
        overlay: Any = None,
    ) -> dict[str, np.ndarray]:
        """Evaluate outputs for a batch of input words.

        Parameters
        ----------
        inputs:
            Maps input-bus name to a scalar or sequence of integers.  All
            sequences must share one batch size; scalars broadcast.
        reg_state:
            Optional boolean lane per register Q wire; registers read their
            ``init`` value when omitted.
        overlay:
            Optional fault overlay (see module docstring); faulty wires
            are patched as the sweep reaches them, so downstream logic
            sees the defective value.

        Returns
        -------
        dict
            Output-bus name → object array of integers (batch-sized).
        """
        seqs, batch = _coerce_inputs(self.netlist, inputs)
        engine = resolve_backend(self.backend, probe=self.probe, overlay=overlay)
        return engine.comb_run(self, seqs, batch, reg_state, overlay)

    # -- interpreter ---------------------------------------------------- #

    def _const_lane(self, batch: int, value: bool) -> np.ndarray:
        """A shared read-only constant lane (callers must not mutate)."""
        key = (batch, value)
        lane = self._const_lanes.get(key)
        if lane is None:
            if any(k[0] != batch for k in self._const_lanes):
                self._const_lanes.clear()  # keep one batch size around
            lane = np.full(batch, value, dtype=bool)
            self._const_lanes[key] = lane
        return lane

    def _run_interp(
        self,
        seqs: Mapping[str, "Sequence[int] | np.ndarray"],
        batch: int,
        reg_state: Mapping[int, np.ndarray] | None,
        overlay: Any,
    ) -> dict[str, np.ndarray]:
        nl = self.netlist
        if len(self._values_buf) != len(nl.gates):
            self._values_buf = [None] * len(nl.gates)
        values = self._values_buf
        preset: set[int] = set()
        for name, bus in nl.inputs.items():
            lanes = bits_from_ints(seqs[name], bus.width)
            for wire, lane in zip(bus, lanes):
                if lane.shape[0] == 1 and batch != 1:
                    lane = np.broadcast_to(lane, (batch,))
                values[wire] = np.ascontiguousarray(lane)
                preset.add(wire)

        faulty = overlay.wires if overlay is not None else ()
        init_state = {r.q: r.init for r in nl.registers}
        for w, g in enumerate(nl.gates):
            if w not in preset:
                if g.op is Op.CONST0:
                    values[w] = self._const_lane(batch, False)
                elif g.op is Op.CONST1:
                    values[w] = self._const_lane(batch, True)
                elif g.op is Op.REG:
                    if reg_state is not None and w in reg_state:
                        lane = np.asarray(reg_state[w], dtype=bool)
                        values[w] = (
                            np.broadcast_to(lane, (batch,))
                            if lane.shape[0] == 1
                            else lane
                        )
                    else:
                        values[w] = self._const_lane(batch, init_state[w])
                elif g.op is Op.INPUT:
                    raise ValueError(f"input wire {w} ({g.name}) left undriven")
                else:
                    values[w] = evaluate_op(g.op, tuple(values[f] for f in g.fanin))
            if w in faulty:
                values[w] = overlay.patch(w, values[w], values)

        self._wire_values = values  # exposed for SequentialSimulator / debug
        if self.probe is not None:
            self.probe.record_sweep(values, batch)
        _observe_sweep("interp", batch)
        return {
            name: ints_from_bits([values[w] for w in bus])
            for name, bus in nl.outputs.items()
        }

    # -- compiled engine ------------------------------------------------ #

    def _run_compiled(
        self,
        seqs: Mapping[str, "Sequence[int] | np.ndarray"],
        batch: int,
        reg_state: Mapping[int, np.ndarray] | None,
        overlay: Any,
    ) -> dict[str, np.ndarray]:
        nl = self.netlist
        if reg_state:
            widest = max(np.asarray(v).shape[0] for v in reg_state.values())
            batch = max(batch, widest)
        zero, ones = 0, ones_mask(batch)
        masks: Mapping[int, tuple[int, int]] = {}
        if overlay is not None:
            if isinstance(overlay, PackedFaultPlan):
                if overlay.lanes != batch:
                    raise ValueError(
                        f"fault plan has {overlay.lanes} lanes, batch is {batch}"
                    )
                masks = overlay.masks
            else:
                stuck = overlay.stuck_assignments()
                masks = stuck_masks_from_overlay(stuck, ones) if stuck else {}
        kern = compile_netlist(nl, patchable=bool(masks))

        input_words: dict[int, int] = {}
        for name, bus in nl.inputs.items():
            packed_bus = _packed_from_ints(seqs[name], bus.width, batch, ones)
            for wire, value in zip(bus, packed_bus):
                input_words[wire] = value
        init_state = {r.q: r.init for r in nl.registers}
        leaves: list[int] = []
        for w in kern.leaves:
            g = nl.gates[w]
            if g.op is Op.INPUT:
                if w not in input_words:
                    raise ValueError(f"input wire {w} ({g.name}) left undriven")
                leaves.append(input_words[w])
            else:  # REG
                if reg_state is not None and w in reg_state:
                    lane = np.asarray(reg_state[w], dtype=bool)
                    if lane.shape[0] != batch:
                        lane = np.broadcast_to(lane, (batch,))
                    leaves.append(pack_lanes(lane))
                else:
                    leaves.append(ones if init_state[w] else zero)

        outs = kern.fn(leaves, masks, zero, ones)
        self._wire_values = []  # the compiled engine keeps no wire table
        _observe_sweep("compiled", batch)
        return _outputs_from_packed(
            [
                (name, [outs[kern.index[w]] for w in bus])
                for name, bus in nl.outputs.items()
            ],
            batch,
        )


class BatchEntry:
    """Prepared batch entry into one netlist's compiled kernel.

    The serving hot path (:mod:`repro.serve`) evaluates the same
    combinational netlist on small request batches thousands of times a
    second.  Going through :meth:`CombinationalSimulator.run` would
    re-resolve the engine, re-classify every kernel leaf and rebuild the
    register-init words on each call; a ``BatchEntry`` freezes all of
    that once at construction:

    * the compiled kernel (fetched through the process-wide kernel
      cache, so structurally identical netlists share one compilation);
    * the leaf layout — which kernel argument slots are fed by which
      input-bus bits, and which carry register init values;
    * the per-bus wire positions of every output.

    A sweep then costs one boundary pack per input bus, one kernel call
    and one (lazy) boundary unpack.  Registers are held at their reset
    values — exactly :meth:`CombinationalSimulator.run` with no
    ``reg_state`` — so a purely combinational circuit needs nothing
    special and a pipelined one reads as its reset-state fabric.
    """

    __slots__ = (
        "netlist",
        "kernel",
        "engine",
        "_n_leaves",
        "_reg_slots",
        "_input_slots",
        "_interp_sim",
    )

    def __init__(self, netlist: Netlist, backend: str = "compiled") -> None:
        netlist.check()
        self.netlist = netlist
        # Engine resolution happens once, here: the serving hot path
        # must never re-resolve per sweep.  No probe and no overlay ever
        # ride a batch entry, so the resolved engine is final.
        self.engine = resolve_backend(backend)
        self.kernel = compile_netlist(netlist)
        self._interp_sim: "CombinationalSimulator | None" = None
        kern = self.kernel
        self._n_leaves = len(kern.leaves)
        pos_of = {w: i for i, w in enumerate(kern.leaves)}
        init = {r.q: r.init for r in netlist.registers}
        self._reg_slots: list[tuple[int, bool]] = [
            (pos_of[w], init[w]) for w in kern.leaves if w in init
        ]
        # Input bits outside the kernel's live cone have no leaf slot;
        # they are packed (validation is per-bus) and then dropped.
        self._input_slots: list[tuple[str, int, list[int | None]]] = [
            (name, bus.width, [pos_of.get(w) for w in bus])
            for name, bus in netlist.inputs.items()
        ]

    def run(
        self,
        inputs: Mapping[str, int | Sequence[int]],
        materialize: bool = True,
    ) -> Mapping[str, np.ndarray]:
        """One compiled sweep over a batch of input words.

        Same contract as :meth:`CombinationalSimulator.run` (scalars
        broadcast, sequences must agree on one batch size); with
        ``materialize=False`` the returned mapping defers each output
        bus's boundary transpose until first read
        (:class:`PackedOutputs`).
        """
        seqs, batch = _coerce_inputs(self.netlist, inputs)
        return self.engine.batch_run(self, seqs, batch, materialize)

    def run_stream(
        self,
        input_batches: "Iterable[Mapping[str, int | Sequence[int]]]",
        materialize: bool = False,
    ) -> "Iterator[Mapping[str, np.ndarray]]":
        """Lazily sweep a stream of input batches through one entry.

        A generator over :meth:`run` — one sweep per batch, yielded as
        it completes, with ``materialize=False`` by default so outputs
        stay in the engine's packed lane form until the consumer reads
        a bus.  This is the population-scale analysis contract
        (:mod:`repro.analysis.stream`): at no point do more than one
        batch's inputs or outputs exist, so a 10⁸-permutation campaign
        holds O(batch) memory regardless of length.  The input iterable
        is itself consumed lazily — feeding a generator keeps even the
        *input* indices from materialising campaign-wide.
        """
        for inputs in input_batches:
            yield self.run(inputs, materialize=materialize)

    def _run_compiled(
        self,
        seqs: Mapping[str, "Sequence[int] | np.ndarray"],
        batch: int,
        materialize: bool,
    ) -> Mapping[str, np.ndarray]:
        zero, ones = 0, ones_mask(batch)
        leaves = [0] * self._n_leaves
        for pos, init in self._reg_slots:
            leaves[pos] = ones if init else zero
        for name, width, positions in self._input_slots:
            packed_bus = _packed_from_ints(seqs[name], width, batch, ones)
            for pos, value in zip(positions, packed_bus):
                if pos is not None:
                    leaves[pos] = value
        outs = self.kernel.fn(leaves, {}, zero, ones)
        _observe_sweep("compiled", batch)
        index = self.kernel.index
        buses = {
            name: [outs[index[w]] for w in bus]
            for name, bus in self.netlist.outputs.items()
        }
        if materialize:
            return _outputs_from_packed(list(buses.items()), batch)
        return PackedOutputs(buses, batch)


class SequentialSimulator:
    """Clocked simulation with batched register state.

    Each lane of the batch is an independent copy of the circuit — useful
    for running many Monte-Carlo streams through one pipelined shuffle
    circuit simultaneously, or one fault per lane in fault-parallel
    campaigns.

    Under the compiled engine the register state lives in packed
    integers; the :attr:`state` property unpacks on demand and re-packs after
    assignment, so callers that read or overwrite boolean state keep
    working unchanged.  (Mutating the arrays *inside* a read ``state``
    dict in place is not supported on the compiled engine.)
    """

    def __init__(
        self,
        netlist: Netlist,
        batch: int = 1,
        overlay: Any = None,
        probe: Any = None,
        backend: str = "auto",
    ) -> None:
        self.comb = CombinationalSimulator(netlist, probe=probe, backend=backend)
        self.netlist = netlist
        self.batch = batch
        self.overlay = overlay
        self.probe = probe
        self.backend = backend
        self.cycle = 0
        # The overlay and probe are fixed for the simulator's lifetime,
        # so the engine resolves once, here, through the registry.
        self.engine = resolve_backend(backend, probe=probe, overlay=overlay)
        self._bool_state: dict[int, np.ndarray] | None = {}
        self._packed_state: dict[int, int] | None = None
        self._masks: Mapping[int, tuple[int, int]] | None = None
        self._inc_kern: Any = None
        self._inc_state: list[Any] | None = None
        self._zero = 0
        self._ones = ones_mask(batch)
        #: engine-private session scratch (e.g. the vector engine's
        #: word-array state); cleared by the ``state`` setter
        self._scratch: dict[str, Any] = {}
        self.reset()

    # -- state access --------------------------------------------------- #

    @property
    def state(self) -> dict[int, np.ndarray]:
        """Register Q wire → boolean lane vector (unpacked on demand)."""
        bool_state = self._bool_state
        if bool_state is None:
            bool_state = self.engine.seq_unpack_state(self)
            self._bool_state = bool_state
        return bool_state

    @state.setter
    def state(self, value: Mapping[int, np.ndarray]) -> None:
        self._bool_state = dict(value)
        self._packed_state = None
        self._scratch.pop("state", None)

    def reset(self) -> None:
        """Load every register with its init value; rewind the cycle count."""
        self.cycle = 0
        self.engine.seq_reset(self)

    # -- stepping ------------------------------------------------------- #

    def step(self, inputs: Mapping[str, int | Sequence[int]]) -> dict[str, np.ndarray]:
        """Advance one clock: evaluate, emit outputs, latch register Ds.

        With an overlay attached, any SEU scheduled for this cycle flips
        the stored register state *before* evaluation; the corrupted
        value then propagates (and is re-latched downstream) exactly
        once — a transient upset, not a stuck bit.
        """
        return self.engine.seq_step(self, inputs)

    def _apply_seu_interp(self) -> None:
        if self.overlay is None:
            return
        flips = getattr(self.overlay, "seu_lane_flips", None)
        if flips is not None:
            state = self.state
            for q, lane_mask in flips(self.cycle).items():
                state[q] = state[q] ^ lane_mask
        for q in self.overlay.seu(self.cycle):
            self.state[q] = np.logical_not(self.state[q])

    def _step_interp(
        self, inputs: Mapping[str, int | Sequence[int]]
    ) -> dict[str, np.ndarray]:
        self._apply_seu_interp()
        outputs = self.comb.run(inputs, reg_state=self.state, overlay=self.overlay)
        wire_values = self.comb._wire_values
        next_state: dict[int, np.ndarray] = {}
        for r in self.netlist.registers:
            lane = wire_values[r.d]
            assert lane is not None
            if lane.shape[0] != self.batch:
                lane = np.broadcast_to(lane, (self.batch,)).copy()
            next_state[r.q] = lane
        self.state = next_state
        self.cycle += 1
        return outputs

    def _ensure_masks(self) -> Mapping[int, tuple[int, int]]:
        masks = self._masks
        if masks is None:
            overlay = self.overlay
            if overlay is None:
                masks = {}
            elif isinstance(overlay, PackedFaultPlan):
                if overlay.lanes != self.batch:
                    raise ValueError(
                        f"fault plan has {overlay.lanes} lanes, "
                        f"batch is {self.batch}"
                    )
                masks = overlay.masks
            else:
                stuck = overlay.stuck_assignments()
                masks = (
                    stuck_masks_from_overlay(stuck, self._ones) if stuck else {}
                )
            self._masks = masks
        return masks

    def _ensure_packed_state(self) -> dict[int, int]:
        packed = self._packed_state
        if packed is None:
            batch, ones = self.batch, self._ones
            bool_state = self._bool_state or {}
            packed = {}
            for q, lane in bool_state.items():
                arr = np.asarray(lane, dtype=bool)
                if arr.shape[0] != batch:
                    arr = np.broadcast_to(arr, (batch,))
                # constant lanes (every register right after reset()) pack
                # to the all-ones / all-zeros masks without a bit shuffle
                if not arr.any():
                    packed[q] = 0
                elif arr.all():
                    packed[q] = ones
                else:
                    packed[q] = pack_lanes(arr)
            self._packed_state = packed
        return packed

    def _advance(
        self, input_words: Mapping[int, int]
    ) -> tuple[tuple[int, ...], Any]:
        """One compiled clock tick on pre-packed inputs; returns raw words."""
        nl, batch = self.netlist, self.batch
        masks = self._ensure_masks()
        # without stuck-at hooks the event-driven kernel applies: gates
        # re-evaluate only when a fanin's value changed, so pipeline-fill
        # cycles on a held input touch just the moving wavefront
        kern = (
            compile_netlist(nl, patchable=True)
            if masks
            else compile_netlist(nl, incremental=True)
        )
        zero, ones = self._zero, self._ones
        packed = self._ensure_packed_state()

        if self.overlay is not None:
            flips = getattr(self.overlay, "seu_lane_flips", None)
            if flips is not None:
                for q, lane_mask in flips(self.cycle).items():
                    packed[q] = packed[q] ^ pack_lanes(
                        np.asarray(lane_mask, dtype=bool)
                    )
            for q in self.overlay.seu(self.cycle):
                packed[q] = packed[q] ^ ones

        init_state = {r.q: r.init for r in nl.registers}
        leaves: list[int] = []
        for w in kern.leaves:
            g = nl.gates[w]
            if g.op is Op.INPUT:
                if w not in input_words:
                    raise ValueError(f"input wire {w} ({g.name}) left undriven")
                leaves.append(input_words[w])
            elif w in packed:
                leaves.append(packed[w])
            else:
                leaves.append(ones if init_state[w] else zero)

        if kern.incremental:
            if self._inc_kern is not kern:
                self._inc_state = [None] * kern.state_slots
                self._inc_kern = kern
            outs = kern.fn(leaves, masks, zero, ones, self._inc_state)
        else:
            outs = kern.fn(leaves, masks, zero, ones)
        self._packed_state = {r.q: outs[kern.index[r.d]] for r in nl.registers}
        self._bool_state = None
        self.cycle += 1
        _observe_sweep("compiled", batch)
        return outs, kern

    def _pack_inputs(
        self, inputs: Mapping[str, int | Sequence[int]]
    ) -> dict[int, int]:
        nl, batch, ones = self.netlist, self.batch, self._ones
        seqs, in_batch = _coerce_inputs(nl, inputs)
        if in_batch not in (1, batch):
            raise ValueError("inconsistent batch sizes")
        input_words: dict[int, int] = {}
        for name, bus in nl.inputs.items():
            packed_bus = _packed_from_ints(seqs[name], bus.width, batch, ones)
            for wire, value in zip(bus, packed_bus):
                input_words[wire] = value
        return input_words

    def _step_compiled(
        self, inputs: Mapping[str, int | Sequence[int]]
    ) -> dict[str, np.ndarray]:
        outs, kern = self._advance(self._pack_inputs(inputs))
        return _outputs_from_packed(
            [
                (name, [outs[kern.index[w]] for w in bus])
                for name, bus in self.netlist.outputs.items()
            ],
            self.batch,
        )

    def _run_stream_compiled(
        self,
        input_stream: Sequence[Mapping[str, int | Sequence[int]]],
        materialize: bool,
    ) -> list[Mapping[str, np.ndarray]]:
        nl, batch = self.netlist, self.batch
        results: list[Mapping[str, np.ndarray]] = []
        prev: dict[str, Any] = {}
        words: dict[int, int] = {}
        for inputs in input_stream:
            seqs, in_batch = _coerce_inputs(nl, inputs)
            if in_batch not in (1, batch):
                raise ValueError("inconsistent batch sizes")
            for name, bus in nl.inputs.items():
                val = seqs[name]
                # a held input (the same array object cycle after cycle,
                # as when filling a pipeline with one batch) packs once
                if prev.get(name) is not val:
                    packed_bus = _packed_from_ints(
                        val, bus.width, batch, self._ones
                    )
                    for wire, value in zip(bus, packed_bus):
                        words[wire] = value
                    prev[name] = val
            outs, kern = self._advance(words)
            buses = {
                name: [outs[kern.index[w]] for w in bus]
                for name, bus in nl.outputs.items()
            }
            if materialize:
                results.append(_outputs_from_packed(list(buses.items()), batch))
            else:
                results.append(PackedOutputs(buses, batch))
        return results

    def run_stream(
        self,
        input_stream: Sequence[Mapping[str, int | Sequence[int]]],
        materialize: bool = True,
    ) -> list[Mapping[str, np.ndarray]]:
        """Feed a sequence of per-cycle inputs; collect per-cycle outputs.

        Scratch buffers (wire table, packed state) are allocated once and
        reused for every cycle.  Under the compiled engine, an input bus
        fed the *same object* on consecutive cycles is packed only once.

        With ``materialize=False`` the compiled engine defers the
        packed → word boundary transpose: each cycle's mapping converts a
        bus the first time it is read (:class:`PackedOutputs`).  A
        pipelined batch sweep only reads the outputs after the pipeline
        has filled, so fill cycles cost just the kernel call.  The
        interpreter produces output words as a byproduct of gate
        evaluation, so the flag is a no-op there; values read from either
        engine are identical regardless.
        """
        return self.engine.seq_run_stream(self, input_stream, materialize)


# --------------------------------------------------------------------- #
# builtin engine registrations


@register_engine
class InterpEngine(Engine):
    """The boolean interpreter: fully general, one array per wire.

    The only engine that materialises the wire-value table, so it hosts
    probes and arbitrary overlays (bridging faults read their aggressor
    wires from that table).  ``auto_priority`` 0: the fallback every
    other engine defers to.
    """

    name = "interp"
    capabilities = EngineCapabilities(
        name="interp",
        sweep_lanes=4096,
        probes=True,
        patch_masks=True,
        seu_lanes=True,
        general_overlays=True,
        incremental=False,
        auto_priority=0,
    )

    @classmethod
    def comb_run(cls, sim, seqs, batch, reg_state, overlay):
        return sim._run_interp(seqs, batch, reg_state, overlay)

    @classmethod
    def batch_run(cls, entry, seqs, batch, materialize):
        sim = entry._interp_sim
        if sim is None:
            sim = entry._interp_sim = CombinationalSimulator(
                entry.netlist, backend="interp"
            )
        return sim._run_interp(seqs, batch, None, None)

    @classmethod
    def seq_reset(cls, sim):
        sim.state = {
            r.q: np.full(sim.batch, r.init, dtype=bool)
            for r in sim.netlist.registers
        }

    @classmethod
    def seq_step(cls, sim, inputs):
        return sim._step_interp(inputs)

    @classmethod
    def seq_unpack_state(cls, sim):
        # the interpreter keeps boolean state directly; an unset
        # _bool_state can only mean "no registers"
        return {}


@register_engine
class CompiledEngine(Engine):
    """The bit-packed bigint kernels of :mod:`repro.hdl.compile`.

    Highest ``auto_priority``: per-sweep dispatch cost is the lowest of
    the three engines at the ≤ 63-payload-lane quantum, so ``auto``
    picks it whenever the request compiles to per-lane masks.
    """

    name = "compiled"
    capabilities = EngineCapabilities(
        name="compiled",
        sweep_lanes=SWEEP_LANES,
        probes=False,
        patch_masks=True,
        seu_lanes=True,
        general_overlays=False,
        incremental=True,
        auto_priority=100,
    )

    @classmethod
    def comb_run(cls, sim, seqs, batch, reg_state, overlay):
        return sim._run_compiled(seqs, batch, reg_state, overlay)

    @classmethod
    def batch_run(cls, entry, seqs, batch, materialize):
        return entry._run_compiled(seqs, batch, materialize)

    @classmethod
    def seq_reset(cls, sim):
        # constant init values pack to the all-ones/all-zeros words
        # directly — no boolean arrays, no bit shuffles
        ones = sim._ones
        sim._packed_state = {
            r.q: ones if r.init else 0 for r in sim.netlist.registers
        }
        sim._bool_state = None

    @classmethod
    def seq_step(cls, sim, inputs):
        return sim._step_compiled(inputs)

    @classmethod
    def seq_unpack_state(cls, sim):
        packed = sim._packed_state or {}
        return {q: unpack_lanes(value, sim.batch) for q, value in packed.items()}

    @classmethod
    def seq_run_stream(cls, sim, input_stream, materialize):
        return sim._run_stream_compiled(input_stream, materialize)
