"""Compiler-style netlist optimisation passes and the PassManager.

Historically the reproduction's netlist optimisation was scattered:
constant folding and structural hashing (CSE) were baked into
:class:`~repro.hdl.netlist.Netlist` construction, dead-logic elimination
lived alone in :mod:`repro.hdl.optimize`, and every consumer assembled
its own netlist → LUT-map → timing flow.  This module restructures that
into an explicit pipeline in the style of a compiler pass manager:

* a :class:`Pass` is a named netlist → netlist transformation that must
  preserve the circuit's observable behaviour (port-for-port,
  cycle-for-cycle);
* a :class:`PassManager` runs an ordered pipeline, records a
  :class:`PassReport` of structural deltas per pass, emits an
  observability span plus metrics per pass, and — in **checked mode** —
  gates every pass with an equivalence check: a complete BDD proof
  (:func:`repro.hdl.model_check.prove_equivalent`) when the circuit is
  combinational and small enough, dense batched random simulation
  (:func:`repro.hdl.verify.random_equivalence_check`) otherwise.

The stock passes:

``fold``
    Re-applies construction-time constant folding / peephole
    simplification to an arbitrary netlist (deserialised or rewritten
    netlists bypass the construction-time folding this was migrated
    from).
``dedupe``
    Fanout-duplicate merge: global structural hashing that merges gates
    computing the identical function of identical operands — the
    standalone form of construction-time CSE, needed after rewrites
    that create duplicates construction never saw.
``demorgan``
    NOT/De Morgan normalisation: fuses inverters into complemented ops
    (``NOT(AND) → NAND`` …), collapses inverted-operand pairs
    (``AND(¬a, ¬b) → NOR(a, b)``), and absorbs operand inversions into
    XOR/XNOR polarity.  Every rewrite is locally non-increasing in gate
    count.
``regprop``
    Constant propagation through registers: a register whose D pin is
    tied to a constant equal to its init value (directly, through a
    self-loop, or through a chain of already-constant registers) holds
    that value on every cycle, so its Q is replaced by the constant and
    the register deleted.
``sweep``
    Dead-logic elimination (migrated from ``optimize.sweep``): rebuilds
    the netlist keeping only the transitive fanin of outputs and live
    register D pins.

Use :func:`default_pipeline` for the full ordered list, or address
passes by name through :data:`PASSES` (the CLI's ``synth --passes`` and
:mod:`repro.flow` both do).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Protocol, Sequence

from repro.errors import PassVerificationError
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Gate, Netlist, Register, Wire
from repro.obs import metrics as _metrics

__all__ = [
    "Pass",
    "PassReport",
    "PipelineResult",
    "PassManager",
    "ConstantFoldPass",
    "DedupePass",
    "DeMorganPass",
    "RegisterConstPropPass",
    "SweepPass",
    "PASSES",
    "default_pipeline",
    "resolve_passes",
    "rebuild",
    "check_equivalent",
]

_LEAF_OPS = frozenset({Op.INPUT, Op.REG, Op.CONST0, Op.CONST1})

_PASS_RUNS = _metrics.REGISTRY.counter(
    "repro_pass_runs_total", "optimisation pass executions", ("pass_name",)
)
_PASS_GATES_REMOVED = _metrics.REGISTRY.counter(
    "repro_pass_gates_removed_total",
    "logic gates removed by optimisation passes",
    ("pass_name",),
)
_PASS_WALL = _metrics.REGISTRY.histogram(
    "repro_pass_wall_seconds", "per-pass wall time", ("pass_name",)
)
_PASS_CHECKS = _metrics.REGISTRY.counter(
    "repro_pass_equivalence_checks_total",
    "checked-mode equivalence checks, by method",
    ("pass_name", "method"),
)


class Pass(Protocol):
    """A named, behaviour-preserving netlist transformation."""

    name: str

    def run(self, nl: Netlist) -> Netlist:
        """Return a transformed netlist; must not mutate ``nl``."""
        ...


# --------------------------------------------------------------------- #
# the shared rebuild engine

#: Optional rewrite hook: ``hook(out, mapped_fanin, gate)`` may return a
#: replacement wire in ``out`` (or None for default reconstruction).
RewriteHook = Callable[[Netlist, tuple[Wire, ...], Gate], "Wire | None"]


def rebuild(
    nl: Netlist,
    *,
    fold: bool = True,
    cse: bool = True,
    rewrite: RewriteHook | None = None,
    reg_const: Mapping[Wire, bool] | None = None,
) -> Netlist:
    """Reconstruct ``nl`` gate by gate through a fresh builder.

    The single engine behind every rewriting pass: ports and registers
    are recreated, then each logic gate is re-emitted through
    :meth:`Netlist.gate` with the requested folding/CSE settings, with
    ``rewrite`` given first refusal on every gate.  ``reg_const`` maps
    register Q wires to constants: those registers are deleted and their
    Q replaced by the constant (see :class:`RegisterConstPropPass`).
    """
    nl.check()
    out = Netlist(nl.name, fold=fold, cse=cse)
    mapping: dict[Wire, Wire] = {}
    reg_const = dict(reg_const or {})

    for name, bus in nl.inputs.items():
        new_bus = out.input(name, bus.width)
        for old, new in zip(bus, new_bus):
            mapping[old] = new

    # REG placeholders first: Q wires are leaves that downstream logic
    # may reference before the D cones are rebuilt.
    kept_regs: list[Register] = []
    for r in nl.registers:
        if r.q in reg_const:
            mapping[r.q] = out.const(reg_const[r.q])
        else:
            mapping[r.q] = out._new_wire(Op.REG, (), name=nl.gates[r.q].name)
            kept_regs.append(r)

    for w, g in enumerate(nl.gates):
        if w in mapping:
            continue
        if g.op is Op.CONST0:
            mapping[w] = out.const(0)
        elif g.op is Op.CONST1:
            mapping[w] = out.const(1)
        elif g.op is Op.INPUT:
            raise AssertionError("inputs already mapped")
        elif g.op is Op.REG:
            # a REG gate without a register entry: keep as a floating leaf
            mapping[w] = out._new_wire(Op.REG, (), name=g.name)
        else:
            fanin = tuple(mapping[f] for f in g.fanin)
            new: Wire | None = None
            if rewrite is not None:
                new = rewrite(out, fanin, g)
            if new is None:
                new = out.gate(g.op, *fanin, name=g.name)
            mapping[w] = new

    for r in kept_regs:
        out.registers.append(Register(q=mapping[r.q], d=mapping[r.d], init=r.init))
    for name, bus in nl.outputs.items():
        out.output(name, Bus(mapping[w] for w in bus))
    return out


# --------------------------------------------------------------------- #
# stock passes


class ConstantFoldPass:
    """Re-apply construction-time folding to an arbitrary netlist."""

    name = "fold"

    def run(self, nl: Netlist) -> Netlist:
        return rebuild(nl, fold=True, cse=False)


class DedupePass:
    """Fanout-duplicate merge: global structural hashing (standalone CSE)."""

    name = "dedupe"

    def run(self, nl: Netlist) -> Netlist:
        return rebuild(nl, fold=False, cse=True)


#: op → complemented op, for inverter fusion.
_COMPLEMENT = {
    Op.AND: Op.NAND,
    Op.NAND: Op.AND,
    Op.OR: Op.NOR,
    Op.NOR: Op.OR,
    Op.XOR: Op.XNOR,
    Op.XNOR: Op.XOR,
}

#: op → the op computing the same function of complemented operands
#: (De Morgan duals; XOR/XNOR handled by polarity counting instead).
_DEMORGAN_DUAL = {
    Op.AND: Op.NOR,
    Op.OR: Op.NAND,
    Op.NAND: Op.OR,
    Op.NOR: Op.AND,
}


class DeMorganPass:
    """NOT/De Morgan normalisation.

    Three families of strictly non-increasing rewrites (the replaced
    inverters go dead and are reclaimed by ``sweep``):

    * inverter fusion — ``NOT(AND(a, b)) → NAND(a, b)`` and the five
      siblings from :data:`_COMPLEMENT`;
    * De Morgan collapse — ``AND(¬a, ¬b) → NOR(a, b)`` and the three
      siblings from :data:`_DEMORGAN_DUAL`;
    * XOR polarity absorption — each inverted XOR/XNOR operand flips the
      op between XOR and XNOR and the inverter is dropped.
    """

    name = "demorgan"

    @staticmethod
    def _rewrite(out: Netlist, fanin: tuple[Wire, ...], g: Gate) -> Wire | None:
        def is_not(w: Wire) -> bool:
            return out.gates[w].op is Op.NOT

        if g.op is Op.NOT:
            inner = out.gates[fanin[0]]
            if inner.op in _COMPLEMENT:
                return out.gate(_COMPLEMENT[inner.op], *inner.fanin, name=g.name)
            return None
        if g.op in _DEMORGAN_DUAL:
            a, b = fanin
            if is_not(a) and is_not(b):
                return out.gate(
                    _DEMORGAN_DUAL[g.op],
                    out.gates[a].fanin[0],
                    out.gates[b].fanin[0],
                    name=g.name,
                )
            return None
        if g.op in (Op.XOR, Op.XNOR):
            a, b = fanin
            flips = 0
            if is_not(a):
                a, flips = out.gates[a].fanin[0], flips + 1
            if is_not(b):
                b, flips = out.gates[b].fanin[0], flips + 1
            if flips == 0:
                return None
            op = g.op if flips == 2 else _COMPLEMENT[g.op]
            return out.gate(op, a, b, name=g.name)
        return None

    def run(self, nl: Netlist) -> Netlist:
        return rebuild(nl, fold=True, cse=True, rewrite=self._rewrite)


class RegisterConstPropPass:
    """Delete registers that provably hold a constant on every cycle.

    A register outputs ``init`` on cycle 0 and its D value thereafter;
    its Q is the constant ``init`` iff D is tied to that same value —
    directly to a constant wire, to its own Q (a hold loop), or to the Q
    of another register already proven constant.  The set is closed to a
    fixpoint so chains and mutually-holding groups all collapse, then
    the surviving logic is rebuilt with folding on, which propagates the
    constants combinationally.
    """

    name = "regprop"

    @staticmethod
    def _constant_registers(nl: Netlist) -> dict[Wire, bool]:
        def const_of(w: Wire) -> bool | None:
            op = nl.gates[w].op
            if op is Op.CONST0:
                return False
            if op is Op.CONST1:
                return True
            return None

        known: dict[Wire, bool] = {}
        changed = True
        while changed:
            changed = False
            for r in nl.registers:
                if r.q in known:
                    continue
                if r.d == r.q:
                    d_val: bool | None = bool(r.init)
                else:
                    d_val = const_of(r.d)
                    if d_val is None:
                        d_val = known.get(r.d)
                if d_val is not None and d_val == bool(r.init):
                    known[r.q] = bool(r.init)
                    changed = True
        return known

    def run(self, nl: Netlist) -> Netlist:
        return rebuild(nl, fold=True, cse=True, reg_const=self._constant_registers(nl))


class SweepPass:
    """Dead-logic elimination (migrated from ``repro.hdl.optimize``).

    Liveness is the transitive fanin cone of the primary outputs, closed
    over register Q→D dependencies (a live register keeps its D cone
    live, which may wake further registers).  Unused primary inputs are
    preserved so the port list — and any exported Verilog module
    interface — is unchanged.
    """

    name = "sweep"

    def run(self, nl: Netlist) -> Netlist:
        nl.check()
        live: set[Wire] = set()
        stack = [w for bus in nl.outputs.values() for w in bus]
        keep_regs: list[Register] = []
        pending = list(nl.registers)
        while True:
            while stack:
                w = stack.pop()
                if w in live:
                    continue
                live.add(w)
                stack.extend(nl.gates[w].fanin)
            woke = [r for r in pending if r.q in live]
            if not woke:
                break
            pending = [r for r in pending if r.q not in live]
            keep_regs.extend(woke)
            stack.extend(r.d for r in woke)
        keep_regs.sort(key=lambda r: r.q)

        out = Netlist(name=nl.name)
        mapping: dict[Wire, Wire] = {}
        for name, bus in nl.inputs.items():
            new_bus = out.input(name, bus.width)
            for old, new in zip(bus, new_bus):
                mapping[old] = new
        for r in keep_regs:
            mapping[r.q] = out._new_wire(Op.REG, (), name=nl.gates[r.q].name)
        for w, g in enumerate(nl.gates):
            if w not in live or w in mapping:
                continue
            if g.op is Op.CONST0:
                mapping[w] = out.const(0)
            elif g.op is Op.CONST1:
                mapping[w] = out.const(1)
            elif g.op is Op.INPUT:
                raise AssertionError("inputs already mapped")
            elif g.op is Op.REG:
                continue  # dead register Q that somehow stayed live-checked
            else:
                mapping[w] = out.gate(g.op, *(mapping[f] for f in g.fanin), name=g.name)
        for r in keep_regs:
            out.registers.append(Register(q=mapping[r.q], d=mapping[r.d], init=r.init))
        for name, bus in nl.outputs.items():
            out.output(name, Bus(mapping[w] for w in bus))
        return out


#: Name → constructor for every stock pass.
PASSES: dict[str, Callable[[], Pass]] = {
    "fold": ConstantFoldPass,
    "dedupe": DedupePass,
    "demorgan": DeMorganPass,
    "regprop": RegisterConstPropPass,
    "sweep": SweepPass,
}

#: The full pipeline, in its canonical order: register constants first
#: (they expose folding opportunities), inverter normalisation, a
#: folding + dedupe cleanup, and dead-logic reclamation last.
DEFAULT_PIPELINE = ("regprop", "demorgan", "fold", "dedupe", "sweep")


def default_pipeline() -> list[Pass]:
    """Fresh instances of the full ordered pipeline."""
    return [PASSES[name]() for name in DEFAULT_PIPELINE]


def resolve_passes(spec: Iterable["Pass | str"]) -> list[Pass]:
    """Materialise a mixed list of pass names and instances."""
    out: list[Pass] = []
    for item in spec:
        if isinstance(item, str):
            try:
                out.append(PASSES[item]())
            except KeyError:
                raise ValueError(
                    f"unknown pass {item!r}; available: {', '.join(sorted(PASSES))}"
                ) from None
        else:
            out.append(item)
    return out


# --------------------------------------------------------------------- #
# equivalence gating


def check_equivalent(
    before: Netlist,
    after: Netlist,
    *,
    bdd_bit_limit: int = 14,
    samples: int = 256,
    cycles: int = 16,
    engine: str = "auto",
) -> tuple[str, int]:
    """Prove or densely test that two netlists agree.

    Combinational pairs within ``bdd_bit_limit`` input bits get a
    complete ROBDD equivalence proof; everything else (wide or
    sequential) gets batched random simulation from reset.  ``engine``
    selects the simulation backend for the latter path (BDD proofs do
    not simulate).  Returns ``(method, points)`` where ``method`` is
    ``"bdd"`` or ``"simulation"``; raises :class:`AssertionError` on
    disagreement.
    """
    input_bits = sum(bus.width for bus in before.inputs.values())
    combinational = not before.registers and not after.registers
    if combinational and input_bits <= bdd_bit_limit:
        from repro.hdl.model_check import find_distinguishing_input, prove_equivalent

        if not prove_equivalent(before, after):
            witness = find_distinguishing_input(before, after)
            raise AssertionError(f"BDD proof failed; counterexample {witness}")
        return "bdd", 1 << input_bits

    from repro.hdl.verify import random_equivalence_check

    points = random_equivalence_check(
        before, after, samples=samples, cycles=cycles, engine=engine
    )
    return "simulation", points


# --------------------------------------------------------------------- #
# the manager


@dataclass(frozen=True)
class PassReport:
    """Structural deltas (and check evidence) from one pass execution."""

    pass_name: str
    gates_before: int
    gates_after: int
    registers_before: int
    registers_after: int
    depth_before: int
    depth_after: int
    wall_s: float
    check_method: str | None = None  #: "bdd" / "simulation" when checked
    check_points: int = 0  #: vectors proven (bdd) or simulated

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    @property
    def registers_removed(self) -> int:
        return self.registers_before - self.registers_after


@dataclass(frozen=True)
class PipelineResult:
    """Everything one :meth:`PassManager.run` produced."""

    netlist: Netlist
    reports: tuple[PassReport, ...]

    @property
    def gates_removed(self) -> int:
        return sum(r.gates_removed for r in self.reports)

    @property
    def registers_removed(self) -> int:
        return sum(r.registers_removed for r in self.reports)

    @property
    def checked(self) -> bool:
        return all(r.check_method is not None for r in self.reports)

    def render(self) -> str:
        """Per-pass delta table (the ``synth`` subcommand prints this)."""
        header = f"{'pass':>10}  {'gates':>12}  {'regs':>11}  {'depth':>9}  {'check':>12}"
        lines = [header]
        for r in self.reports:
            check = (
                f"{r.check_method}:{r.check_points}" if r.check_method else "-"
            )
            lines.append(
                f"{r.pass_name:>10}  "
                f"{r.gates_before:>5}->{r.gates_after:<5}  "
                f"{r.registers_before:>5}->{r.registers_after:<4}  "
                f"{r.depth_before:>3}->{r.depth_after:<3}  "
                f"{check:>12}"
            )
        return "\n".join(lines)


class PassManager:
    """Runs an ordered pass pipeline with telemetry and optional gating.

    Parameters
    ----------
    passes:
        Pass instances or registry names; defaults to the full pipeline.
    checked:
        Gate every pass with an equivalence check (BDD proof for small
        combinational netlists, batched random simulation otherwise).
        A failing pass raises :class:`~repro.errors.PassVerificationError`
        naming the pass — the transformed netlist never escapes.
    bdd_bit_limit / check_samples / check_cycles / engine:
        Checker knobs, forwarded to :func:`check_equivalent`
        (``engine`` picks the simulation backend for non-BDD checks).
    tracer:
        Optional :class:`repro.obs.tracing.Tracer`; each pass runs in a
        child span carrying its structural deltas.
    """

    def __init__(
        self,
        passes: "Sequence[Pass | str] | None" = None,
        *,
        checked: bool = False,
        bdd_bit_limit: int = 14,
        check_samples: int = 256,
        check_cycles: int = 16,
        engine: str = "auto",
        tracer: object | None = None,
    ) -> None:
        self.passes = (
            default_pipeline() if passes is None else resolve_passes(passes)
        )
        self.checked = checked
        self.bdd_bit_limit = bdd_bit_limit
        self.check_samples = check_samples
        self.check_cycles = check_cycles
        self.engine = engine
        self.tracer = tracer

    def _run_one(
        self, p: Pass, current: Netlist, span: object | None
    ) -> tuple[Netlist, PassReport]:
        t0 = time.perf_counter()
        after = p.run(current)
        after.check()
        method: str | None = None
        points = 0
        if self.checked:
            try:
                method, points = check_equivalent(
                    current,
                    after,
                    bdd_bit_limit=self.bdd_bit_limit,
                    samples=self.check_samples,
                    cycles=self.check_cycles,
                    engine=self.engine,
                )
            except AssertionError as exc:
                raise PassVerificationError(
                    f"pass {p.name!r} broke equivalence: {exc}",
                    pass_name=p.name,
                    method="bdd/simulation",
                ) from exc
        report = PassReport(
            pass_name=p.name,
            gates_before=current.num_logic_gates,
            gates_after=after.num_logic_gates,
            registers_before=current.num_registers,
            registers_after=after.num_registers,
            depth_before=current.depth,
            depth_after=after.depth,
            wall_s=time.perf_counter() - t0,
            check_method=method,
            check_points=points,
        )
        if span is not None:
            span.attrs.update(  # type: ignore[attr-defined]
                gates=f"{report.gates_before}->{report.gates_after}",
                registers=f"{report.registers_before}->{report.registers_after}",
                depth=f"{report.depth_before}->{report.depth_after}",
                **({"check": f"{method}:{points}"} if method else {}),
            )
        if _metrics.REGISTRY.enabled:
            _PASS_RUNS.inc(pass_name=p.name)
            if report.gates_removed > 0:
                _PASS_GATES_REMOVED.inc(report.gates_removed, pass_name=p.name)
            _PASS_WALL.observe(report.wall_s, pass_name=p.name)
            if method is not None:
                _PASS_CHECKS.inc(pass_name=p.name, method=method)
        return after, report

    def run(self, nl: Netlist) -> PipelineResult:
        current = nl
        reports: list[PassReport] = []
        for p in self.passes:
            if self.tracer is not None:
                with self.tracer.span(f"pass:{p.name}") as span:  # type: ignore[attr-defined]
                    current, report = self._run_one(p, current, span)
            else:
                current, report = self._run_one(p, current, None)
            reports.append(report)
        return PipelineResult(netlist=current, reports=tuple(reports))
