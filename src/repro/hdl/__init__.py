"""Gate-level hardware description and simulation substrate.

This package stands in for the Verilog + SRC-6/Stratix-IV toolchain used in
the paper.  Circuits are built as netlists of primitive gates
(:mod:`repro.hdl.gates`), grouped into word-level components such as ripple
subtractors, constant comparators and one-hot multiplexers
(:mod:`repro.hdl.components`), and simulated either combinationally or as a
clocked pipeline (:mod:`repro.hdl.simulator`).  Evaluation is vectorised:
every wire carries a NumPy boolean array so that thousands of input vectors
are pushed through the circuit per pass, following the batch-first idiom of
scientific Python.

The substrate exposes exactly the quantities the paper's evaluation relies
on: gate counts by type, levelised logic depth (delay), register counts and
pipeline latency/throughput.  :mod:`repro.fpga` maps these netlists onto a
k-LUT/ALM resource model to regenerate Tables III and IV.
"""

from repro.hdl.gates import Op, GATE_ARITY, evaluate_op
from repro.hdl.netlist import Netlist, Bus, Wire
from repro.hdl.engine import (
    BACKENDS,
    Engine,
    EngineCapabilities,
    engine_capability,
    engine_names,
    get_engine,
    register_engine,
    resolve_backend,
)
from repro.hdl.simulator import (
    BatchEntry,
    CombinationalSimulator,
    SequentialSimulator,
)
from repro.hdl.vector import (
    VECTOR_SWEEP_LANES,
    VectorEngine,
)
from repro.hdl.compile import (
    SWEEP_LANES,
    CompiledKernel,
    PackedFaultPlan,
    compile_netlist,
    kernel_cache_info,
    clear_kernel_cache,
)
from repro.hdl.verify import (
    assert_equivalent,
    exhaustive_check,
    random_check,
)
from repro.hdl.export import to_verilog, VCDWriter
from repro.hdl.optimize import sweep, SweepStats
from repro.hdl.passes import (
    Pass,
    PassManager,
    PassReport,
    PipelineResult,
    PASSES,
    default_pipeline,
)
from repro.hdl.serialize import (
    netlist_to_dict,
    netlist_from_dict,
    save_netlist,
    load_netlist,
    netlist_fingerprint,
)
from repro.hdl.model_check import (
    netlist_to_bdds,
    prove_equivalent,
    prove_constant_output,
    find_distinguishing_input,
)
from repro.hdl import components

__all__ = [
    "Op",
    "GATE_ARITY",
    "evaluate_op",
    "Netlist",
    "Bus",
    "Wire",
    "BACKENDS",
    "Engine",
    "EngineCapabilities",
    "engine_capability",
    "engine_names",
    "get_engine",
    "register_engine",
    "resolve_backend",
    "BatchEntry",
    "CombinationalSimulator",
    "SequentialSimulator",
    "VECTOR_SWEEP_LANES",
    "VectorEngine",
    "SWEEP_LANES",
    "CompiledKernel",
    "PackedFaultPlan",
    "compile_netlist",
    "kernel_cache_info",
    "clear_kernel_cache",
    "assert_equivalent",
    "exhaustive_check",
    "random_check",
    "to_verilog",
    "VCDWriter",
    "sweep",
    "SweepStats",
    "Pass",
    "PassManager",
    "PassReport",
    "PipelineResult",
    "PASSES",
    "default_pipeline",
    "netlist_to_dict",
    "netlist_from_dict",
    "save_netlist",
    "load_netlist",
    "netlist_fingerprint",
    "netlist_to_bdds",
    "prove_equivalent",
    "prove_constant_output",
    "find_distinguishing_input",
    "components",
]
