"""Word-level combinational components.

These are the building blocks named in the paper's Figures 1–3:

* ``A − B`` ripple-borrow **subtractors** that reduce the running index
  after each factorial digit is extracted,
* **comparators** against constants (the ``> 8``, ``> 16`` … blocks of
  Fig. 1) that compute a factorial digit in thermometer code,
* **one-hot multiplexers** that pick the next permutation element out of
  the pool of unassigned elements,
* **crossover switches** (conditional swaps) for the Knuth shuffle cascade
  of Fig. 3, and
* a **shift-and-add constant multiplier** for the ``k·x`` scaling block of
  the random-integer generator in Fig. 2.

All functions take the :class:`~repro.hdl.netlist.Netlist` under
construction as their first argument and return :class:`Bus`/wire handles.
"""

from __future__ import annotations

from typing import Sequence

from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist, Wire

__all__ = [
    "zero_extend",
    "reduce_or",
    "reduce_and",
    "mux2_bus",
    "binary_mux",
    "onehot_mux",
    "thermometer_to_onehot",
    "onehot_to_binary",
    "ripple_add",
    "ripple_sub",
    "sub_const",
    "geq_const",
    "less_const",
    "equals_const",
    "crossover",
    "decoder",
    "shift_add_mult_const",
    "truncate_high",
]


def zero_extend(nl: Netlist, bus: Bus, width: int) -> Bus:
    """Pad ``bus`` with constant-0 wires up to ``width`` bits."""
    if bus.width > width:
        raise ValueError(f"cannot zero-extend {bus.width} bits down to {width}")
    return bus + Bus(nl.const(0) for _ in range(width - bus.width))


def _reduce(nl: Netlist, op: Op, wires: Sequence[Wire], empty: int) -> Wire:
    """Balanced reduction tree — keeps depth logarithmic."""
    ws = list(wires)
    if not ws:
        return nl.const(empty)
    while len(ws) > 1:
        nxt = []
        for i in range(0, len(ws) - 1, 2):
            nxt.append(nl.gate(op, ws[i], ws[i + 1]))
        if len(ws) % 2:
            nxt.append(ws[-1])
        ws = nxt
    return ws[0]


def reduce_or(nl: Netlist, wires: Sequence[Wire]) -> Wire:
    """OR-reduce a set of wires (0 if empty)."""
    return _reduce(nl, Op.OR, wires, 0)


def reduce_and(nl: Netlist, wires: Sequence[Wire]) -> Wire:
    """AND-reduce a set of wires (1 if empty)."""
    return _reduce(nl, Op.AND, wires, 1)


def mux2_bus(nl: Netlist, sel: Wire, a: Bus, b: Bus) -> Bus:
    """Bit-wise 2:1 multiplexer: ``b`` when ``sel`` else ``a``.

    Unequal widths are zero-extended to the wider operand.
    """
    w = max(a.width, b.width)
    a, b = zero_extend(nl, a, w), zero_extend(nl, b, w)
    return Bus(nl.gate(Op.MUX, sel, x, y) for x, y in zip(a, b))


def binary_mux(nl: Netlist, sel: Bus, options: Sequence[Bus]) -> Bus:
    """Select ``options[sel]`` with a tree of 2:1 muxes.

    ``len(options)`` may be any positive count ≤ ``2**sel.width``; the tree
    simply reuses the last real option for out-of-range upper leaves, which
    never occurs for in-range selects.
    """
    if not options:
        raise ValueError("binary_mux needs at least one option")
    layer = list(options)
    for bit in sel:
        nxt = []
        for i in range(0, len(layer), 2):
            lo = layer[i]
            hi = layer[i + 1] if i + 1 < len(layer) else layer[i]
            nxt.append(mux2_bus(nl, bit, lo, hi))
        layer = nxt
        if len(layer) == 1:
            break
    return layer[0]


def onehot_mux(nl: Netlist, select: Sequence[Wire], data: Sequence[Bus]) -> Bus:
    """One-hot multiplexer (the "One-Hot MUX" blocks of Fig. 1).

    ``select`` is a one-hot vector; the output is the OR of the AND-masked
    data words.  If no select line is high the output is all zeros.
    """
    if len(select) != len(data):
        raise ValueError("select and data lengths differ")
    width = max(d.width for d in data)
    out = []
    for bit in range(width):
        terms = []
        for s, d in zip(select, data):
            if bit < d.width:
                terms.append(nl.gate(Op.AND, s, d[bit]))
        out.append(reduce_or(nl, terms))
    return Bus(out)


def thermometer_to_onehot(nl: Netlist, therm: Sequence[Wire]) -> list[Wire]:
    """Convert a thermometer code to one-hot.

    ``therm[j]`` means "value ≥ j+1"; the returned vector has
    ``onehot[v] = 1`` where ``v`` is the encoded value in ``0..len(therm)``
    (so the output is one entry longer than the input).
    """
    n = len(therm)
    out: list[Wire] = []
    for v in range(n + 1):
        if v == 0:
            out.append(nl.gate(Op.NOT, therm[0]) if n else nl.const(1))
        elif v == n:
            out.append(therm[n - 1])
        else:
            out.append(nl.gate(Op.ANDN, therm[v - 1], therm[v]))
    return out


def onehot_to_binary(nl: Netlist, onehot: Sequence[Wire]) -> Bus:
    """Encode a one-hot vector as a binary bus."""
    n = len(onehot)
    width = max(1, (n - 1).bit_length())
    bits = []
    for b in range(width):
        bits.append(reduce_or(nl, [onehot[v] for v in range(n) if (v >> b) & 1]))
    return Bus(bits)


def ripple_add(nl: Netlist, a: Bus, b: Bus, cin: Wire | None = None) -> tuple[Bus, Wire]:
    """Ripple-carry adder; returns (sum, carry-out)."""
    w = max(a.width, b.width)
    a, b = zero_extend(nl, a, w), zero_extend(nl, b, w)
    carry = cin if cin is not None else nl.const(0)
    bits = []
    for x, y in zip(a, b):
        s1 = nl.gate(Op.XOR, x, y)
        bits.append(nl.gate(Op.XOR, s1, carry))
        c1 = nl.gate(Op.AND, x, y)
        c2 = nl.gate(Op.AND, s1, carry)
        carry = nl.gate(Op.OR, c1, c2)
    return Bus(bits), carry


def ripple_sub(nl: Netlist, a: Bus, b: Bus) -> tuple[Bus, Wire]:
    """Ripple-borrow subtractor ``a − b``; returns (difference, borrow-out).

    Borrow-out is 1 exactly when ``a < b`` (difference then wraps modulo
    2^width).  This is the ``A−B`` block drawn at the top of each stage in
    Fig. 1, and its borrow output doubles as the ``a < b`` comparator.
    """
    w = max(a.width, b.width)
    a, b = zero_extend(nl, a, w), zero_extend(nl, b, w)
    borrow = nl.const(0)
    bits = []
    for x, y in zip(a, b):
        d1 = nl.gate(Op.XOR, x, y)
        bits.append(nl.gate(Op.XOR, d1, borrow))
        nb1 = nl.gate(Op.ANDN, y, x)  # y and not x
        nb2 = nl.gate(Op.AND, borrow, nl.gate(Op.NOT, d1))
        borrow = nl.gate(Op.OR, nb1, nb2)
    return Bus(bits), borrow


def sub_const(nl: Netlist, a: Bus, c: int) -> tuple[Bus, Wire]:
    """``a − c`` for a compile-time constant ``c``; folds aggressively."""
    return ripple_sub(nl, a, nl.const_bus(c, a.width))


def geq_const(nl: Netlist, a: Bus, c: int) -> Wire:
    """Comparator ``a ≥ c`` against a constant (the Fig.-1 ``>`` blocks).

    Implemented as NOT(borrow(a − c)); constant folding in the netlist
    prunes the borrow chain down to the few gates a synthesiser would keep.
    """
    if c == 0:
        return nl.const(1)
    if c.bit_length() > a.width:
        return nl.const(0)
    _, borrow = sub_const(nl, a, c)
    return nl.gate(Op.NOT, borrow)


def less_const(nl: Netlist, a: Bus, c: int) -> Wire:
    """Comparator ``a < c`` against a constant."""
    return nl.gate(Op.NOT, geq_const(nl, a, c))


def equals_const(nl: Netlist, a: Bus, c: int) -> Wire:
    """Comparator ``a == c`` against a constant."""
    if c.bit_length() > a.width:
        return nl.const(0)
    terms = [w if (c >> i) & 1 else nl.gate(Op.NOT, w) for i, w in enumerate(a)]
    return reduce_and(nl, terms)


def crossover(nl: Netlist, ctrl: Wire, a: Bus, b: Bus) -> tuple[Bus, Bus]:
    """Conditional swap: straight-through when ``ctrl=0``, crossed when 1.

    This is the crossover cell whose count gives the O(n²) complexity of
    the Knuth shuffle circuit (§III-C).
    """
    return mux2_bus(nl, ctrl, a, b), mux2_bus(nl, ctrl, b, a)


def decoder(nl: Netlist, sel: Bus, count: int | None = None) -> list[Wire]:
    """Binary→one-hot decoder with ``count`` outputs (default 2^width)."""
    n = count if count is not None else 1 << sel.width
    return [equals_const(nl, sel, v) for v in range(n)]


def shift_add_mult_const(nl: Netlist, x: Bus, k: int) -> Bus:
    """Shift-and-add multiplier ``k · x`` for constant ``k`` (Fig. 2).

    The paper notes this is "much faster than the multiplier typically
    found in an FPGA" because only ``popcount(k)`` shifted copies are
    added.  The result is full width: ``x.width + k.bit_length()`` bits.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    out_width = x.width + max(k.bit_length(), 1)
    acc = nl.const_bus(0, out_width)
    for shift in range(k.bit_length()):
        if (k >> shift) & 1:
            shifted = Bus(nl.const(0) for _ in range(shift)) + x
            shifted = zero_extend(nl, shifted, out_width)
            acc, _ = ripple_add(nl, acc, shifted)
    return acc


def truncate_high(nl: Netlist, bus: Bus, drop_low: int) -> Bus:
    """Right-shift-and-truncate: keep bits ``drop_low..`` (Fig. 2 block)."""
    if drop_low >= bus.width:
        return Bus((nl.const(0),))
    return bus[drop_low:]
