"""Structured error taxonomy for the whole package.

Every failure the runtime can *diagnose* gets its own exception type, all
rooted at :class:`ReproError`, so callers (and the CLI) can distinguish

* **caller mistakes** — :class:`InvalidIndexError`,
  :class:`InvalidPermutationError` — which also subclass
  :class:`ValueError` so pre-existing ``except ValueError`` call sites
  keep working;
* **detected hardware faults** — :class:`FaultDetectedError` (an output
  failed an online check, e.g. it is not a bijection or the dual rails
  disagree) and its sharper sibling :class:`SilentCorruptionError` (the
  output *was* a valid permutation — it would have sailed past a
  bijectivity check — but the rank∘unrank oracle proves it is the wrong
  one: the dangerous silent-corruption class);
* **infrastructure failures** — :class:`WorkerFailedError` (a parallel
  shard raised or its process died; carries the shard id) and
  :class:`ShardTimeoutError` (the shard exceeded its deadline);
* **admission-control decisions** — :class:`ServiceOverloadedError`
  (``ServiceOverloaded`` for short): the serving layer *chose* to shed
  a request because its queue was at capacity.  Shedding is not a bug —
  it is the mechanism that keeps tail latency bounded under overload —
  so it gets its own type that clients can catch and retry with
  backoff.  Its siblings complete the serving-tier taxonomy:
  :class:`ServiceDegradedError` (the supervised tier has stepped down
  its degradation ladder far enough that this request class cannot be
  served right now — retry after the shard recovers),
  :class:`ServiceShutdownError` (the service was closed while the
  request was pending or before it was submitted; also a
  :class:`RuntimeError` so pre-existing ``except RuntimeError`` call
  sites keep working), :class:`WorkerCrashedError` and
  :class:`WorkerStalledError` (a supervised serving worker died
  mid-sweep or blew its response deadline — both retryable
  :class:`WorkerFailedError` flavours that the supervisor converts
  into restarts and failovers, never into served errors).

The taxonomy is what makes graceful degradation possible: the hardened
runners in :mod:`repro.parallel.sharding` retry ``WorkerFailedError``
but never mask a ``FaultDetectedError``, which must reach the operator.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidIndexError",
    "InvalidPermutationError",
    "CampaignConfigError",
    "PassVerificationError",
    "FaultDetectedError",
    "SilentCorruptionError",
    "WorkerFailedError",
    "ShardTimeoutError",
    "WorkerCrashedError",
    "WorkerStalledError",
    "InvalidRequestError",
    "ProtocolError",
    "CellBudgetError",
    "CheckpointError",
    "CheckpointMismatchError",
    "ServiceOverloadedError",
    "ServiceOverloaded",
    "ServiceDegradedError",
    "ServiceShutdownError",
]


class ReproError(Exception):
    """Base class for every diagnosed failure in the package."""


class InvalidIndexError(ReproError, ValueError):
    """A permutation index outside ``0 .. n! − 1`` (or not an integer)."""


class InvalidPermutationError(ReproError, ValueError):
    """A sequence that is not a permutation of the expected pool."""


class CampaignConfigError(ReproError, ValueError):
    """An invalid fault-campaign specification (bad n, model, samples…)."""


class PassVerificationError(ReproError):
    """A netlist optimisation pass broke functional equivalence.

    Raised by :class:`repro.hdl.passes.PassManager` in checked mode when
    the post-pass netlist disagrees with the pre-pass netlist — by BDD
    proof for small input spaces, by batched random simulation above
    that.  ``pass_name`` identifies the offending pass and ``method``
    which checker caught it.
    """

    def __init__(self, message: str, pass_name: str | None = None, method: str | None = None):
        super().__init__(message)
        self.pass_name = pass_name
        self.method = method


class FaultDetectedError(ReproError):
    """An online checker caught a corrupted output before it escaped.

    Raised when a result fails bijectivity, when dual-rail evaluations
    disagree, or on any other check that fires *during* operation.  The
    offending index and output are attached when known.
    """

    def __init__(self, message: str, index: int | None = None, output=None):
        super().__init__(message)
        self.index = index
        self.output = output


class SilentCorruptionError(FaultDetectedError):
    """A *valid but wrong* permutation — caught only by the rank oracle.

    The output is a bijection, so a structural self-check passes; only
    cross-checking ``rank(output) == index`` against the independent
    Lehmer-code implementation exposes it.  This is the class a
    hardware designer worries about most, hence its own type.
    """


class WorkerFailedError(ReproError):
    """A parallel worker raised, or its process died mid-shard.

    ``shard_id`` identifies the failing shard; ``attempts`` counts how
    many times it was tried before giving up; ``cause`` carries the
    final underlying error (also set as ``__cause__`` where raised).
    """

    def __init__(
        self,
        message: str,
        shard_id: int | None = None,
        attempts: int = 1,
        cause: BaseException | None = None,
    ):
        super().__init__(message)
        self.shard_id = shard_id
        self.attempts = attempts
        self.cause = cause


class ShardTimeoutError(WorkerFailedError):
    """A shard exceeded its per-shard deadline in a hardened runner."""


class WorkerCrashedError(WorkerFailedError):
    """A supervised serving worker died mid-sweep.

    Raised inside the supervisor's execution ladder when the worker
    thread/process servicing a shard exits (or is killed by the chaos
    harness) before delivering its sweep result.  The supervisor treats
    it as a restartable infrastructure failure: the worker is respawned
    with backoff and the sweep fails over to the next ladder rung —
    callers of the service itself never see this type.
    """


class WorkerStalledError(WorkerFailedError):
    """A supervised serving worker blew its sweep/heartbeat deadline.

    Deadline-based stall detection: the worker may still be running (a
    stuck kernel, a livelock, an injected stall) but its result is no
    longer trusted or waited on.  Like a crash it is retryable — the
    stalled worker is abandoned, a fresh one is spawned, and the sweep
    fails over.  Any late result from the abandoned worker is discarded.
    """


class InvalidRequestError(ReproError, ValueError):
    """A malformed serving request (unknown workload, bad n, missing or
    out-of-range index…).  Caller mistake, so also a :class:`ValueError`."""


class ProtocolError(ReproError, ValueError):
    """A malformed ``repro-serve/1`` wire frame.

    Raised by the binary protocol codec (:mod:`repro.serve.net.protocol`)
    for anything the framing layer itself must reject: an oversized or
    truncated frame, an unknown protocol version, an unrecognised
    workload or status tag, or trailing bytes after a fully decoded
    body.  The server answers with a typed ``ERROR`` response and closes
    the connection — a byte-level violation means the stream can no
    longer be trusted to be frame-aligned — while *semantic* mistakes in
    a well-formed frame (bad ``n``, index out of range, zero count) stay
    :class:`InvalidRequestError` and leave the connection open.
    """


class CellBudgetError(ReproError, ValueError):
    """A dense histogram was requested past the analysis cell budget.

    Raised instead of allocating ``n!`` chi-square cells when the exact
    method is forced for an ``n`` whose factorial exceeds
    ``MAX_EXACT_CELLS`` (:mod:`repro.analysis.uniformity`).  The caller
    should switch to the bucketed method (the default ``method="auto"``
    does so on its own).  ``cells`` carries the refused allocation and
    ``budget`` the limit.
    """

    def __init__(self, message: str, cells: int | None = None, budget: int | None = None):
        super().__init__(message)
        self.cells = cells
        self.budget = budget


class CheckpointError(ReproError):
    """A campaign checkpoint file could not be read or is malformed.

    Covers unreadable files, JSON that fails to parse, and payloads that
    do not validate against the ``repro-analysis/1`` schema.  ``path``
    names the offending file when known.
    """

    def __init__(self, message: str, path: str | None = None):
        super().__init__(message)
        self.path = path


class CheckpointMismatchError(CheckpointError):
    """A well-formed checkpoint that belongs to a *different* campaign.

    Resuming from a checkpoint whose configuration fingerprint disagrees
    with the requested campaign would silently merge statistics from two
    different populations — the exact corruption class the fingerprint
    exists to stop, so it is refused with its own type rather than a
    generic error.
    """


class ServiceOverloadedError(ReproError):
    """The serving queue is at capacity; this request was shed.

    Raised by :meth:`repro.serve.PermutationService.submit` when the
    number of queued-but-unserved requests has reached the configured
    ``max_queue_depth``.  Shedding at admission keeps the queue — and
    therefore every accepted request's latency — bounded; the client
    should back off and retry.  ``queue_depth`` and ``limit`` record
    the pressure at the moment of rejection.
    """

    def __init__(
        self, message: str, queue_depth: int | None = None, limit: int | None = None
    ):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.limit = limit


class ServiceDegradedError(ReproError):
    """The supervised tier cannot serve this request at its current rung.

    Raised when a shard's degradation ladder has stepped past every
    serving mode that could satisfy the request — e.g. the compiled
    worker's circuit breaker is open *and* the in-process fallback is
    unavailable or also broken, leaving cache-only mode, and the request
    missed the cache.  Like :class:`ServiceOverloadedError` this is a
    *decision*, not a bug: the tier sheds rather than serve a result it
    cannot trust.  ``mode`` names the rung the shard is pinned at
    (``"cache_only"`` …) and ``shard`` identifies the degraded shard.
    """

    def __init__(self, message: str, mode: str | None = None, shard=None):
        super().__init__(message)
        self.mode = mode
        self.shard = shard


class ServiceShutdownError(ReproError, RuntimeError):
    """The service was closed while this request was pending.

    Raised (a) by ``submit`` on a closed service and (b) on any future
    still unresolved when ``close()`` finishes draining — shutdown must
    settle every waiter, never leave one hung.  Subclasses
    :class:`RuntimeError` so callers guarding with ``except
    RuntimeError`` keep working.
    """


#: The short name the serving layer's docs use for the shed signal.
ServiceOverloaded = ServiceOverloadedError
