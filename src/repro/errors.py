"""Structured error taxonomy for the whole package.

Every failure the runtime can *diagnose* gets its own exception type, all
rooted at :class:`ReproError`, so callers (and the CLI) can distinguish

* **caller mistakes** — :class:`InvalidIndexError`,
  :class:`InvalidPermutationError` — which also subclass
  :class:`ValueError` so pre-existing ``except ValueError`` call sites
  keep working;
* **detected hardware faults** — :class:`FaultDetectedError` (an output
  failed an online check, e.g. it is not a bijection or the dual rails
  disagree) and its sharper sibling :class:`SilentCorruptionError` (the
  output *was* a valid permutation — it would have sailed past a
  bijectivity check — but the rank∘unrank oracle proves it is the wrong
  one: the dangerous silent-corruption class);
* **infrastructure failures** — :class:`WorkerFailedError` (a parallel
  shard raised or its process died; carries the shard id) and
  :class:`ShardTimeoutError` (the shard exceeded its deadline);
* **admission-control decisions** — :class:`ServiceOverloadedError`
  (``ServiceOverloaded`` for short): the serving layer *chose* to shed
  a request because its queue was at capacity.  Shedding is not a bug —
  it is the mechanism that keeps tail latency bounded under overload —
  so it gets its own type that clients can catch and retry with
  backoff.

The taxonomy is what makes graceful degradation possible: the hardened
runners in :mod:`repro.parallel.sharding` retry ``WorkerFailedError``
but never mask a ``FaultDetectedError``, which must reach the operator.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidIndexError",
    "InvalidPermutationError",
    "CampaignConfigError",
    "PassVerificationError",
    "FaultDetectedError",
    "SilentCorruptionError",
    "WorkerFailedError",
    "ShardTimeoutError",
    "InvalidRequestError",
    "ServiceOverloadedError",
    "ServiceOverloaded",
]


class ReproError(Exception):
    """Base class for every diagnosed failure in the package."""


class InvalidIndexError(ReproError, ValueError):
    """A permutation index outside ``0 .. n! − 1`` (or not an integer)."""


class InvalidPermutationError(ReproError, ValueError):
    """A sequence that is not a permutation of the expected pool."""


class CampaignConfigError(ReproError, ValueError):
    """An invalid fault-campaign specification (bad n, model, samples…)."""


class PassVerificationError(ReproError):
    """A netlist optimisation pass broke functional equivalence.

    Raised by :class:`repro.hdl.passes.PassManager` in checked mode when
    the post-pass netlist disagrees with the pre-pass netlist — by BDD
    proof for small input spaces, by batched random simulation above
    that.  ``pass_name`` identifies the offending pass and ``method``
    which checker caught it.
    """

    def __init__(self, message: str, pass_name: str | None = None, method: str | None = None):
        super().__init__(message)
        self.pass_name = pass_name
        self.method = method


class FaultDetectedError(ReproError):
    """An online checker caught a corrupted output before it escaped.

    Raised when a result fails bijectivity, when dual-rail evaluations
    disagree, or on any other check that fires *during* operation.  The
    offending index and output are attached when known.
    """

    def __init__(self, message: str, index: int | None = None, output=None):
        super().__init__(message)
        self.index = index
        self.output = output


class SilentCorruptionError(FaultDetectedError):
    """A *valid but wrong* permutation — caught only by the rank oracle.

    The output is a bijection, so a structural self-check passes; only
    cross-checking ``rank(output) == index`` against the independent
    Lehmer-code implementation exposes it.  This is the class a
    hardware designer worries about most, hence its own type.
    """


class WorkerFailedError(ReproError):
    """A parallel worker raised, or its process died mid-shard.

    ``shard_id`` identifies the failing shard; ``attempts`` counts how
    many times it was tried before giving up; ``cause`` carries the
    final underlying error (also set as ``__cause__`` where raised).
    """

    def __init__(
        self,
        message: str,
        shard_id: int | None = None,
        attempts: int = 1,
        cause: BaseException | None = None,
    ):
        super().__init__(message)
        self.shard_id = shard_id
        self.attempts = attempts
        self.cause = cause


class ShardTimeoutError(WorkerFailedError):
    """A shard exceeded its per-shard deadline in a hardened runner."""


class InvalidRequestError(ReproError, ValueError):
    """A malformed serving request (unknown workload, bad n, missing or
    out-of-range index…).  Caller mistake, so also a :class:`ValueError`."""


class ServiceOverloadedError(ReproError):
    """The serving queue is at capacity; this request was shed.

    Raised by :meth:`repro.serve.PermutationService.submit` when the
    number of queued-but-unserved requests has reached the configured
    ``max_queue_depth``.  Shedding at admission keeps the queue — and
    therefore every accepted request's latency — bounded; the client
    should back off and retry.  ``queue_depth`` and ``limit`` record
    the pressure at the moment of rejection.
    """

    def __init__(
        self, message: str, queue_depth: int | None = None, limit: int | None = None
    ):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.limit = limit


#: The short name the serving layer's docs use for the shed signal.
ServiceOverloaded = ServiceOverloadedError
