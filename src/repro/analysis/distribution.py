"""The Fig.-4 experiment: distribution of 2²⁰ Knuth-shuffle permutations.

Fig. 4 plots, for n = 4, the occurrence count of each of the 24
permutations among 2²⁰ = 1,048,576 shuffles of the identity, keyed by the
packed 8-bit output word (e.g. ``0 1 3 2`` → ``00 01 11 10`` = 30).  The
paper reads off ≈43,690 per bar (two quoted bars: 43,399 and 43,897) and
concludes the distribution is uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.uniformity import chi_square_uniform, total_variation_from_uniform
from repro.core.factorial import element_width, factorial
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import rank_batch, unrank_batch

__all__ = ["permutation_histogram", "packed_histogram", "Fig4Result", "fig4_experiment"]


def permutation_histogram(perms: np.ndarray) -> np.ndarray:
    """Histogram over lexicographic index: length n!, counts per index."""
    p = np.asarray(perms)
    return np.bincount(rank_batch(p), minlength=factorial(p.shape[1]))


def packed_values(perms: np.ndarray) -> np.ndarray:
    """Per-row packed word (MSB-first elements, the paper's encoding)."""
    p = np.asarray(perms, dtype=np.int64)
    n = p.shape[1]
    w = element_width(n)
    out = np.zeros(p.shape[0], dtype=np.int64)
    for col in range(n):
        out = (out << w) | p[:, col]
    return out


def packed_histogram(perms: np.ndarray) -> dict[int, int]:
    """Counts keyed by packed word — Fig. 4's vertical axis labels."""
    vals, counts = np.unique(packed_values(perms), return_counts=True)
    return {int(v): int(c) for v, c in zip(vals, counts)}


@dataclass(frozen=True)
class Fig4Result:
    """The regenerated Fig.-4 dataset."""

    n: int
    samples: int
    counts_by_index: np.ndarray  #: length n!
    counts_by_packed: dict[int, int]
    chi2: float
    p_value: float
    tv_distance: float

    @property
    def expected_per_bar(self) -> float:
        return self.samples / factorial(self.n)

    @property
    def min_bar(self) -> int:
        return int(self.counts_by_index.min())

    @property
    def max_bar(self) -> int:
        return int(self.counts_by_index.max())

    def bars(self) -> list[tuple[int, str, int]]:
        """(packed value, permutation string, count), ascending packed —
        the layout of the paper's figure."""
        n = self.n
        perms = unrank_batch(range(factorial(n)), n)
        rows = []
        for idx in range(factorial(n)):
            perm = perms[idx]
            packed = 0
            w = element_width(n)
            for v in perm:
                packed = (packed << w) | int(v)
            rows.append((packed, " ".join(str(int(v)) for v in perm),
                         int(self.counts_by_index[idx])))
        rows.sort()
        return rows

    def render(self, width: int = 50) -> str:
        """ASCII bar chart of the figure."""
        rows = self.bars()
        peak = max(c for _, _, c in rows)
        lines = []
        for packed, perm, count in rows:
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"{packed:>4}  {perm:<12} {count:>9} {bar}")
        return "\n".join(lines)


def fig4_experiment(
    n: int = 4,
    samples: int = 1 << 20,
    m: int = 31,
    circuit: KnuthShuffleCircuit | None = None,
    batch: int = 1 << 16,
) -> Fig4Result:
    """Regenerate Fig. 4: sample the shuffle circuit, bucket, test."""
    circuit = circuit if circuit is not None else KnuthShuffleCircuit(n, m=m)
    counts = np.zeros(factorial(n), dtype=np.int64)
    packed: dict[int, int] = {}
    remaining = samples
    while remaining > 0:
        chunk = min(batch, remaining)
        perms = circuit.sample(chunk)
        counts += permutation_histogram(perms)
        for v, c in packed_histogram(perms).items():
            packed[v] = packed.get(v, 0) + c
        remaining -= chunk
    chi2, pv = chi_square_uniform(counts)
    return Fig4Result(
        n=n,
        samples=samples,
        counts_by_index=counts,
        counts_by_packed=packed,
        chi2=chi2,
        p_value=pv,
        tv_distance=total_variation_from_uniform(counts),
    )
