"""Mixing of random-transposition walks toward the uniform distribution.

How many random swaps does it take before a deck of n elements is "random"?
The celebrated Diaconis–Shahshahani answer for the random-transposition
walk is a sharp cutoff at ``(1/2)·n·log n`` steps.  The Knuth-shuffle
circuit side-steps the question — its n−1 *structured* stages reach exact
uniformity — but the comparison quantifies what the Fig.-3 structure buys
over naive "just swap random pairs for a while" hardware.

:func:`transposition_walk_tv` measures empirical total-variation distance
to uniform versus step count; :func:`shuffle_vs_walk` contrasts it with
the one-pass Fisher–Yates cascade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.uniformity import total_variation_from_uniform
from repro.core.factorial import factorial
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import rank_batch

__all__ = ["MixingCurve", "transposition_walk_tv", "shuffle_vs_walk", "cutoff_estimate"]


@dataclass(frozen=True)
class MixingCurve:
    """Empirical TV distance to uniform vs number of random swaps."""

    n: int
    samples: int
    steps: tuple[int, ...]
    tv: tuple[float, ...]

    def steps_to_reach(self, threshold: float) -> int | None:
        """First measured step count with TV below ``threshold``."""
        for s, d in zip(self.steps, self.tv):
            if d < threshold:
                return s
        return None


def _walk_batch(n: int, steps: int, samples: int, rng: np.random.Generator) -> np.ndarray:
    perms = np.broadcast_to(np.arange(n, dtype=np.int64), (samples, n)).copy()
    rows = np.arange(samples)
    for _ in range(steps):
        i = rng.integers(0, n, size=samples)
        j = rng.integers(0, n, size=samples)
        vi = perms[rows, i].copy()
        perms[rows, i] = perms[rows, j]
        perms[rows, j] = vi
    return perms


def transposition_walk_tv(
    n: int,
    step_counts: Sequence[int],
    samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> MixingCurve:
    """TV distance to uniform after k uniformly-random transpositions.

    The empirical TV of a finite sample has a noise floor of roughly
    ``√(n!/samples)/2``; interpret values near that floor as "mixed".
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    tvs = []
    for steps in step_counts:
        perms = _walk_batch(n, steps, samples, rng)
        counts = np.bincount(rank_batch(perms), minlength=factorial(n))
        tvs.append(total_variation_from_uniform(counts))
    return MixingCurve(n=n, samples=samples, steps=tuple(step_counts), tv=tuple(tvs))


def cutoff_estimate(n: int) -> float:
    """The Diaconis–Shahshahani mixing time ``(1/2)·n·ln n``."""
    return 0.5 * n * math.log(n)


def shuffle_vs_walk(
    n: int, samples: int = 20_000, rng: np.random.Generator | None = None
) -> dict[str, float]:
    """One-pass Fisher–Yates vs an equal-swap-budget random walk.

    The cascade spends exactly n−1 swaps and is exactly uniform; the
    unstructured walk with the same n−1 swaps is still visibly far from
    uniform (its TV exceeds the cascade's by a clear margin).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    cascade = KnuthShuffleCircuit(n).sample_ideal(samples, rng)
    cascade_counts = np.bincount(rank_batch(cascade), minlength=factorial(n))
    walk = _walk_batch(n, n - 1, samples, rng)
    walk_counts = np.bincount(rank_batch(walk), minlength=factorial(n))
    return {
        "cascade_tv": total_variation_from_uniform(cascade_counts),
        "walk_tv": total_variation_from_uniform(walk_counts),
        "noise_floor": 0.5 * math.sqrt(factorial(n) / samples),
    }
