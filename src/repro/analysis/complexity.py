"""Verifying the paper's complexity claims on real netlists (§II-D, §III-C).

Claims:

* converter — ``n(n+1)/2`` comparators by the paper's accounting (our
  structural count after constant folding is ``n(n−1)/2``; both Θ(n²)),
  gate area O(n²·poly-log), delay O(n) stages;
* Knuth shuffle — ``n(n−1)/2`` crossovers, same orders.

:func:`fit_power_law` least-squares-fits ``log(count) ~ α·log(n)`` so the
benchmarks can assert the measured exponents (≈2 for area, ≈1 for stage
depth) instead of eyeballing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.converter import IndexToPermutationConverter
from repro.core.knuth import KnuthShuffleCircuit

__all__ = [
    "ComplexityReport",
    "converter_complexity",
    "shuffle_complexity",
    "fit_power_law",
]


@dataclass(frozen=True)
class ComplexityReport:
    """Structural counts for one circuit size."""

    n: int
    unit_count: int  #: comparators (converter) / crossovers (shuffle)
    paper_formula: int  #: the closed form printed in the paper
    logic_gates: int
    depth: int
    stages: int


def converter_complexity(n: int) -> ComplexityReport:
    """Counts for the index→permutation converter at size n."""
    conv = IndexToPermutationConverter(n)
    nl = conv.build_netlist(pipelined=False)
    return ComplexityReport(
        n=n,
        unit_count=conv.comparator_count(),
        paper_formula=conv.paper_comparator_count(),
        logic_gates=nl.num_live_gates,
        depth=nl.depth,
        stages=n,
    )


def shuffle_complexity(n: int, m: int = 31) -> ComplexityReport:
    """Counts for the Knuth-shuffle circuit at size n."""
    circ = KnuthShuffleCircuit(n, m=m)
    nl = circ.build_netlist(pipelined=False)
    return ComplexityReport(
        n=n,
        unit_count=circ.crossover_count(),
        paper_formula=n * (n - 1) // 2,
        logic_gates=nl.num_live_gates,
        depth=nl.depth,
        stages=circ.num_stages,
    )


def fit_power_law(ns: list[int], values: list[int | float]) -> tuple[float, float]:
    """Fit ``value ≈ C·n^α``; returns ``(α, R²)`` of the log-log fit."""
    vals = np.asarray(values, dtype=np.float64)
    if np.any(vals <= 0):
        raise ValueError("values must be positive")
    x = np.log(np.asarray(ns, dtype=np.float64))
    y = np.log(vals)
    alpha, intercept = np.polyfit(x, y, 1)
    pred = alpha * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(alpha), r2
