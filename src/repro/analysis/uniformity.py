"""Uniformity statistics for permutation samples.

The paper argues Fig. 4's flat histogram shows the Knuth-shuffle output is
uniform; here that is made quantitative: chi-square goodness of fit over
the n! cells, total-variation distance from uniform, and empirical entropy
(log2 n! bits at uniformity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.factorial import factorial
from repro.core.lehmer import rank_batch

__all__ = [
    "chi_square_uniform",
    "total_variation_from_uniform",
    "empirical_entropy_bits",
    "UniformityReport",
    "uniformity_report",
]


def chi_square_uniform(counts: np.ndarray) -> tuple[float, float]:
    """Chi-square statistic and p-value against the uniform null.

    High p (> 0.01, say) means the sample is consistent with uniformity.
    """
    c = np.asarray(counts, dtype=np.float64)
    if c.ndim != 1 or len(c) < 2:
        raise ValueError("need a 1-D histogram with at least two cells")
    result = stats.chisquare(c)
    return float(result.statistic), float(result.pvalue)


def total_variation_from_uniform(counts: np.ndarray) -> float:
    """TV distance ``½ Σ |p_i − 1/k|`` of the empirical law from uniform."""
    c = np.asarray(counts, dtype=np.float64)
    total = c.sum()
    if total <= 0:
        raise ValueError("empty histogram")
    p = c / total
    return 0.5 * float(np.abs(p - 1.0 / len(c)).sum())


def empirical_entropy_bits(counts: np.ndarray) -> float:
    """Shannon entropy of the empirical distribution, in bits."""
    c = np.asarray(counts, dtype=np.float64)
    total = c.sum()
    if total <= 0:
        raise ValueError("empty histogram")
    p = c[c > 0] / total
    return float(-(p * np.log2(p)).sum())


@dataclass(frozen=True)
class UniformityReport:
    """Summary statistics of a permutation sample."""

    n: int
    samples: int
    counts: np.ndarray
    chi2: float
    p_value: float
    tv_distance: float
    entropy_bits: float

    @property
    def max_entropy_bits(self) -> float:
        return float(np.log2(factorial(self.n)))

    @property
    def looks_uniform(self) -> bool:
        """Conventional 1 % significance verdict."""
        return self.p_value > 0.01


def uniformity_report(perms: np.ndarray) -> UniformityReport:
    """Bucket a ``(B, n)`` sample by lexicographic index and test it."""
    p = np.asarray(perms)
    b, n = p.shape
    indices = rank_batch(p)
    counts = np.bincount(indices, minlength=factorial(n))
    chi2, pv = chi_square_uniform(counts)
    return UniformityReport(
        n=n,
        samples=b,
        counts=counts,
        chi2=chi2,
        p_value=pv,
        tv_distance=total_variation_from_uniform(counts),
        entropy_bits=empirical_entropy_bits(counts),
    )
