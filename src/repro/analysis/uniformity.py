"""Uniformity statistics for permutation samples.

The paper argues Fig. 4's flat histogram shows the Knuth-shuffle output is
uniform; here that is made quantitative: chi-square goodness of fit,
total-variation distance from uniform, and empirical entropy (log2 n!
bits at uniformity).

Two correctness rules shape this module:

* **Sparse histograms are not full histograms.**  ``total_variation_
  from_uniform`` and ``empirical_entropy_bits`` take an explicit
  ``num_cells``: a truncated counts vector (only the observed cells)
  silently treated as the whole support understates the TV distance —
  every absent cell contributes ``1/k`` to ``Σ|p_i − 1/k|`` — and
  overstates how close the entropy is to its true maximum.

* **Dense n!-cell histograms do not scale.**  Past ``MAX_EXACT_CELLS``
  the report routes ranks into ``DEFAULT_BUCKETS`` residue buckets
  (``(A·rank) mod n! mod m`` is bucket ``rank mod m`` after a bijection,
  so we use ``rank mod m`` directly, computed digit-wise without
  bigints).  Residue buckets beat a generic hash for one decisive
  reason: the null cell probabilities are *exact* — residue class ``j``
  holds ``⌊n!/m⌋`` or ``⌈n!/m⌉`` ranks, known in closed form — so the
  chi-square gains no false noncentrality at any sample size, where a
  hash's ±O(m/n!) cell imbalance inflates the statistic by
  ``N·(m/n!)²`` and fails honest generators at population scale.
  ``DEFAULT_BUCKETS`` is prime so every factorial weight ``i! mod m``
  is non-zero (a power of two would zero the weights of positions
  ``i`` with ``2^k | i!`` and blind the test to the high digits).
  Forcing ``method="exact"`` past the budget raises
  :class:`repro.errors.CellBudgetError` instead of allocating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.special import chi2_survival
from repro.core.factorial import factorial
from repro.core.lehmer import lehmer_digit_batch, rank_batch
from repro.errors import CellBudgetError

__all__ = [
    "MAX_EXACT_CELLS",
    "DEFAULT_BUCKETS",
    "MIN_EXPECTED_PER_CELL",
    "chi_square_uniform",
    "total_variation_from_uniform",
    "empirical_entropy_bits",
    "entropy_deficit_bits",
    "effective_bucket_count",
    "rank_bucket_counts",
    "bucket_null_probabilities",
    "UniformityReport",
    "uniformity_report",
]

#: Largest dense cell count the exact method may allocate (n ≤ 9: 9! =
#: 362880 cells; 10! = 3628800 is over).  Past this the report buckets.
MAX_EXACT_CELLS = 1 << 20

#: Default residue bucket count for large-n chi-square.  Prime, so that
#: ``i! mod m`` never vanishes and every Lehmer digit position keeps
#: influencing the bucket (4096 would drop positions with ``2^12 | i!``).
DEFAULT_BUCKETS = 4093

#: Cochran's rule: chi-square wants every expected cell count ≥ 5.  The
#: bucketed path shrinks its bucket count to ``samples // 5`` when the
#: sample is too small to feed the requested buckets.
MIN_EXPECTED_PER_CELL = 5


def chi_square_uniform(
    counts: np.ndarray, expected: np.ndarray | None = None
) -> tuple[float, float]:
    """Chi-square statistic and p-value against the uniform null.

    High p (> 0.01, say) means the sample is consistent with uniformity.
    ``expected`` optionally supplies non-uniform null cell counts (must
    sum to the sample size); the bucketed report passes the exact
    residue-class expectations through it.  The tail probability is
    :func:`repro.analysis.special.chi2_survival` — no scipy.
    """
    c = np.asarray(counts, dtype=np.float64)
    if c.ndim != 1 or len(c) < 2:
        raise ValueError("need a 1-D histogram with at least two cells")
    total = c.sum()
    if total <= 0:
        raise ValueError("empty histogram")
    if expected is None:
        e = np.full(len(c), total / len(c))
    else:
        e = np.asarray(expected, dtype=np.float64)
        if e.shape != c.shape:
            raise ValueError("expected counts must match the histogram shape")
        if (e <= 0).any():
            raise ValueError("expected counts must be positive")
    stat = float(((c - e) ** 2 / e).sum())
    return stat, chi2_survival(stat, len(c) - 1)


def total_variation_from_uniform(
    counts: np.ndarray, num_cells: int | None = None
) -> float:
    """TV distance ``½ Σ |p_i − 1/k|`` of the empirical law from uniform.

    ``num_cells`` is the true support size ``k``.  It defaults to
    ``len(counts)`` for a full histogram, but **must** be passed when
    ``counts`` is sparse or truncated: each of the ``k − len(counts)``
    absent cells contributes ``1/k`` to the sum, so dropping them
    silently understates the distance (a point mass over k cells has TV
    ``1 − 1/k``, not 0).
    """
    c = np.asarray(counts, dtype=np.float64)
    total = c.sum()
    if total <= 0:
        raise ValueError("empty histogram")
    k = len(c) if num_cells is None else int(num_cells)
    if k < len(c):
        raise ValueError(f"num_cells={k} smaller than the histogram ({len(c)} cells)")
    p = c / total
    observed = float(np.abs(p - 1.0 / k).sum())
    return 0.5 * (observed + (k - len(c)) / k)


def empirical_entropy_bits(
    counts: np.ndarray, num_cells: int | None = None
) -> float:
    """Shannon entropy of the empirical distribution, in bits.

    Empty cells contribute nothing to ``−Σ p log2 p``, so the value is
    the same for a sparse and a dense histogram — but ``num_cells``
    still matters: it is the ceiling ``log2(num_cells)`` the entropy is
    judged against, and passing it catches the sparse-histogram mistake
    (``num_cells`` below the observed support is rejected).  Use
    :func:`entropy_deficit_bits` for the quantity of record,
    ``log2(num_cells) − H``.
    """
    c = np.asarray(counts, dtype=np.float64)
    total = c.sum()
    if total <= 0:
        raise ValueError("empty histogram")
    if num_cells is not None and int(num_cells) < len(c):
        raise ValueError(
            f"num_cells={int(num_cells)} smaller than the histogram ({len(c)} cells)"
        )
    p = c[c > 0] / total
    return float(-(p * np.log2(p)).sum())


def entropy_deficit_bits(counts: np.ndarray, num_cells: int) -> float:
    """``log2(num_cells) − H``: bits of entropy missing from uniform.

    Zero for the uniform law over ``num_cells`` cells; using
    ``len(counts)`` of a truncated histogram in place of the true
    support size is exactly the bug this signature prevents.
    """
    k = int(num_cells)
    if k < 1:
        raise ValueError("num_cells must be ≥ 1")
    return float(np.log2(k)) - empirical_entropy_bits(counts, num_cells=k)


def effective_bucket_count(samples: int, buckets: int, n: int) -> int:
    """The bucket count the bucketed report will actually use.

    Deterministic in its inputs (the streaming layer's checkpoint
    fingerprint depends on that): the requested ``buckets`` clamped to
    ``n!`` (no point having more cells than ranks) and to Cochran's
    ``samples // MIN_EXPECTED_PER_CELL`` rule, with a floor of 2 cells.
    """
    if buckets < 2:
        raise ValueError("need at least two buckets")
    m = min(buckets, factorial(n))
    if samples > 0:
        m = min(m, max(2, samples // MIN_EXPECTED_PER_CELL))
    return int(m)


def rank_bucket_counts(
    perms: np.ndarray, buckets: int, *, validate: bool = True
) -> np.ndarray:
    """Histogram of ``rank mod buckets`` for a ``(B, n)`` sample.

    Computed digit-wise — ``Σ dᵢ·((n−1−i)! mod m) mod m`` — so no
    bigint rank is ever formed and any ``n`` works.  Per-term products
    are ≤ n·m < 2⁶³/B for every realistic shape, so the int64 row sums
    are exact.
    """
    p = np.asarray(perms)
    if p.ndim != 2:
        raise ValueError("expected a (B, n) array")
    n = p.shape[1]
    m = int(buckets)
    if m < 2:
        raise ValueError("need at least two buckets")
    digits = lehmer_digit_batch(p, validate=validate)
    weights = np.array(
        [factorial(n - 1 - i) % m for i in range(n)], dtype=np.int64
    )
    residues = (digits * weights).sum(axis=1) % m
    return np.bincount(residues, minlength=m)


def bucket_null_probabilities(n: int, buckets: int) -> np.ndarray:
    """Exact null probability of each residue bucket under uniformity.

    Residue class ``j`` of ``0 .. n!−1`` holds ``⌊n!/m⌋ + [j < n! mod m]``
    ranks; the bigint ratio is taken exactly before the float64 cast, so
    this stays correct when ``n!`` overflows float64.
    """
    m = int(buckets)
    total = factorial(n)
    if m < 2 or m > total:
        raise ValueError("need 2 ≤ buckets ≤ n!")
    q, r = divmod(total, m)
    return np.array(
        [(q + 1) / total if j < r else q / total for j in range(m)],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class UniformityReport:
    """Summary statistics of a permutation sample.

    ``method`` is ``"exact"`` (one cell per rank, ``cells = n!``) or
    ``"buckets"`` (``cells`` residue buckets); ``counts`` has ``cells``
    entries either way, and ``max_entropy_bits`` is ``log2(cells)`` —
    which in exact mode is the classical ``log2 n!``.
    """

    n: int
    samples: int
    counts: np.ndarray
    chi2: float
    p_value: float
    tv_distance: float
    entropy_bits: float
    method: str = "exact"
    cells: int = 0

    @property
    def max_entropy_bits(self) -> float:
        k = self.cells if self.cells else factorial(self.n)
        return float(np.log2(k))

    @property
    def entropy_deficit_bits(self) -> float:
        return self.max_entropy_bits - self.entropy_bits

    @property
    def looks_uniform(self) -> bool:
        """Conventional 1 % significance verdict."""
        return self.p_value > 0.01


def uniformity_report(
    perms: np.ndarray,
    *,
    method: str = "auto",
    buckets: int = DEFAULT_BUCKETS,
    max_exact_cells: int = MAX_EXACT_CELLS,
) -> UniformityReport:
    """Bucket a ``(B, n)`` sample by lexicographic index and test it.

    ``method="auto"`` uses one cell per rank while ``n! ≤
    max_exact_cells`` (n ≤ 9 at the default budget) and residue buckets
    beyond; ``"exact"`` / ``"buckets"`` force a path, and forcing
    ``"exact"`` past the budget raises
    :class:`~repro.errors.CellBudgetError` instead of allocating ``n!``
    cells.  The bucketed chi-square tests against the exact residue
    null (see :func:`bucket_null_probabilities`), with the bucket count
    shrunk per :func:`effective_bucket_count` so expected cell counts
    respect Cochran's ≥ 5 rule.
    """
    p = np.asarray(perms)
    if p.ndim != 2:
        raise ValueError("expected a (B, n) array")
    b, n = p.shape
    if method not in ("auto", "exact", "buckets"):
        raise ValueError(f"unknown method {method!r}")
    nfact = factorial(n)
    exact = method == "exact" or (method == "auto" and nfact <= max_exact_cells)
    if exact and nfact > max_exact_cells:
        raise CellBudgetError(
            f"n={n} needs {nfact} dense cells, over the budget of "
            f"{max_exact_cells}; use method='buckets' (or 'auto')",
            cells=nfact,
            budget=max_exact_cells,
        )
    if exact:
        indices = rank_batch(p)
        counts = np.bincount(indices, minlength=nfact)
        cells = int(nfact)
        chi2, pv = chi_square_uniform(counts)
    else:
        cells = effective_bucket_count(b, buckets, n)
        counts = rank_bucket_counts(p, cells)
        expected = bucket_null_probabilities(n, cells) * b
        chi2, pv = chi_square_uniform(counts, expected=expected)
    return UniformityReport(
        n=n,
        samples=b,
        counts=counts,
        chi2=chi2,
        p_value=pv,
        tv_distance=total_variation_from_uniform(counts, num_cells=cells),
        entropy_bits=empirical_entropy_bits(counts, num_cells=cells),
        method="exact" if exact else "buckets",
        cells=cells,
    )
