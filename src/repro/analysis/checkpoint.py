"""Versioned checkpoint / report files for streaming campaigns.

Schema ``repro-analysis/1``, two document kinds:

* ``kind="checkpoint"`` — a campaign in flight: the config (and its
  fingerprint), the shard decomposition, the completed block ranges and
  the merged pure-integer accumulator state.  Written atomically after
  every round by :func:`repro.analysis.stream.run_population_campaign`,
  so a killed campaign resumes losing at most one round and reproduces
  the uninterrupted result bit for bit.
* ``kind="report"`` — a finished campaign's summary + verdict document
  (:meth:`repro.analysis.stream.CampaignResult.payload`), the artifact
  CI validates and archives.

Malformed files raise :class:`repro.errors.CheckpointError`; a
well-formed checkpoint for a *different* campaign raises
:class:`repro.errors.CheckpointMismatchError` at resume time (that check
lives with the fingerprint comparison in ``stream``).  Writes go through
``tmp + os.replace`` so a crash mid-write leaves the previous checkpoint
intact — a torn checkpoint would silently drop completed rounds.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import CheckpointError

__all__ = [
    "SCHEMA_VERSION",
    "checkpoint_payload",
    "validate_payload",
    "save_checkpoint",
    "load_checkpoint",
]

SCHEMA_VERSION = "repro-analysis/1"

_CHECKPOINT_KEYS = ("version", "kind", "fingerprint", "config", "shards", "completed", "state")
_REPORT_KEYS = ("version", "kind", "fingerprint", "config", "summary", "verdict", "runtime")


def checkpoint_payload(
    cfg: Any,
    state: Mapping[str, Any] | None,
    completed: Sequence[tuple[int, int]],
    shards: int,
) -> dict:
    """Assemble a ``kind="checkpoint"`` document for one campaign."""
    return {
        "version": SCHEMA_VERSION,
        "kind": "checkpoint",
        "fingerprint": cfg.fingerprint(),
        "config": cfg.to_dict(),
        "shards": int(shards),
        "completed": [[int(a), int(b)] for a, b in completed],
        "state": dict(state) if state is not None else None,
    }


def validate_payload(payload: Any, kind: str | None = None, path: str | None = None) -> dict:
    """Schema-check a ``repro-analysis/1`` document; return it.

    ``kind`` optionally pins the expected document kind.  Raises
    :class:`~repro.errors.CheckpointError` with the offending path on
    any violation — version, kind, missing keys, or mis-typed ranges.
    """

    def fail(msg: str) -> CheckpointError:
        where = f" in {path}" if path else ""
        return CheckpointError(f"invalid repro-analysis document{where}: {msg}", path=path)

    if not isinstance(payload, dict):
        raise fail(f"expected an object, got {type(payload).__name__}")
    if payload.get("version") != SCHEMA_VERSION:
        raise fail(f"version {payload.get('version')!r}, expected {SCHEMA_VERSION!r}")
    doc_kind = payload.get("kind")
    if doc_kind not in ("checkpoint", "report"):
        raise fail(f"unknown kind {doc_kind!r}")
    if kind is not None and doc_kind != kind:
        raise fail(f"kind {doc_kind!r}, expected {kind!r}")
    required = _CHECKPOINT_KEYS if doc_kind == "checkpoint" else _REPORT_KEYS
    missing = [key for key in required if key not in payload]
    if missing:
        raise fail(f"missing keys {missing}")
    if not isinstance(payload["fingerprint"], str) or not payload["fingerprint"]:
        raise fail("fingerprint must be a non-empty string")
    if not isinstance(payload["config"], dict):
        raise fail("config must be an object")
    if doc_kind == "checkpoint":
        if not isinstance(payload["shards"], int) or payload["shards"] < 1:
            raise fail("shards must be a positive integer")
        ranges = payload["completed"]
        if not isinstance(ranges, list) or any(
            not isinstance(r, list)
            or len(r) != 2
            or not all(isinstance(x, int) for x in r)
            or r[0] >= r[1]
            for r in ranges
        ):
            raise fail("completed must be a list of [start, stop) integer pairs")
        state = payload["state"]
        if state is not None and (
            not isinstance(state, dict) or "accumulators" not in state
        ):
            raise fail("state must be null or an accumulator state object")
    return payload


def save_checkpoint(path: str | os.PathLike, payload: Mapping[str, Any]) -> None:
    """Atomically write a validated document: tmp file + ``os.replace``."""
    doc = validate_payload(dict(payload))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True))
    os.replace(tmp, target)


def load_checkpoint(path: str | os.PathLike, kind: str = "checkpoint") -> dict:
    """Read + schema-check a document; typed errors for every failure."""
    p = Path(path)
    try:
        raw = p.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {p}: {exc}", path=str(p)) from exc
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {p} is not valid JSON: {exc}", path=str(p)) from exc
    return validate_payload(payload, kind=kind, path=str(p))
