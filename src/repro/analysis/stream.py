"""Population-scale streaming statistical validation (§IV at 10⁸+).

The paper's §IV validation (Fig. 4 uniformity, derangements → e) runs at
demo scale: materialise a ``(B, n)`` array, histogram it densely, test.
This module is the population-scale version — a pipeline that consumes
engine output lazily (``BatchEntry.run_stream(materialize=False)`` on
the interp / compiled / vector engines) and folds every block into
**mergeable accumulators**, so 10⁸+ permutations are validated in
O(cells) memory with never a permutation array larger than one block.

Three design rules make the numbers trustworthy *and* reproducible:

* **Block determinism.**  A campaign is a fixed sequence of blocks
  (``cfg.block`` lanes each); block ``b`` draws its RNG seed from
  ``splitmix64(cfg.seed, b)``.  Statistics are therefore invariant to
  the shard count, worker count, execution order and engine — shard
  boundaries always fall on block boundaries and no stream ever crosses
  one.

* **Integer accumulator state.**  Float addition is not associative, so
  every accumulator keeps pure integer state (cell counts, pair sums)
  and converts to float only in ``summary()``.  Merges are then exactly
  associative *and* commutative — the :class:`repro.obs.LatencyDigest`
  contract — which is what makes a sharded, checkpoint-resumed campaign
  **bit-identical** to a single pass, not just statistically close.

* **Effect-size gates at scale.**  At 10⁸ samples a p-value detects
  physically irrelevant deviations — and the hardware source is a
  *deterministic* m-sequence, so iid-based p-values are not even the
  right null for it.  The verdict therefore gates hardware sources on
  effect sizes (TV distance against its sampling-noise floor, bias
  against the closed-form Fig.-2 profile, a serial-correlation
  envelope) and reserves strict p-value gates for ``source="ideal"``,
  the calibration source.  Every p-value is still reported.

The known LFSR artifact is handled honestly rather than hidden: the
per-stage register shifts one position per word, so successive *scaled
draws* — and therefore successive first elements ``perm[0]`` — are
serially correlated by construction (r ≈ 0.5, the same property
``tests/analysis/test_randtests.py`` documents for raw words).  The
accumulator measures it on ``perm[0]`` (hashing ranks would destroy the
very signal being measured), reports it as ``expected_artifact`` for
hardware sources, and gates only the envelope.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from hashlib import sha256
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.analysis.derangements import subfactorial
from repro.analysis.special import normal_survival
from repro.analysis.uniformity import (
    DEFAULT_BUCKETS,
    bucket_null_probabilities,
    chi_square_uniform,
    effective_bucket_count,
    empirical_entropy_bits,
    rank_bucket_counts,
)
from repro.core.factorial import factorial
from repro.errors import CampaignConfigError, CheckpointMismatchError
from repro.obs import metrics as _metrics
from repro.parallel.sharding import (
    ShardSpec,
    default_workers,
    hardened_map_reduce,
    index_shards,
)
from repro.rng.scaled import ScaledRandomInteger, bias_profile

__all__ = [
    "DEFAULT_ALPHA",
    "SERIAL_ENVELOPE",
    "CampaignConfig",
    "RankBucketAccumulator",
    "FixedPointAccumulator",
    "SerialCorrelationAccumulator",
    "FirstElementBiasAccumulator",
    "ACCUMULATOR_KINDS",
    "PopulationStats",
    "merge_states",
    "stream_blocks",
    "expected_tv_noise",
    "campaign_verdict",
    "battery_report",
    "pigeonhole_curve",
    "CampaignResult",
    "run_population_campaign",
]

#: p-value floor for the ideal-source gates.  Campaigns are seeded, so
#: this is a regression tripwire, not a significance level: a sane
#: seeded run sits far above it, a broken RNG stack far below.
DEFAULT_ALPHA = 1e-6

#: Hardware-source serial-correlation envelope.  The m-sequence shift
#: structure puts lag-1 r of successive scaled draws near 0.5 by
#: design; r approaching 1 means something is actually broken (constant
#: stream, overlapping substreams), so the gate trips there.
SERIAL_ENVELOPE = 0.9

#: Additive slack on every effect-size gate, absorbing the true
#: systematic bias of the hardware stream (≤ ~1e-6 at m = 31) with two
#: orders of magnitude to spare.
EFFECT_SLACK = 1e-3

_M64 = (1 << 64) - 1


def _splitmix64(seed: int, i: int) -> int:
    """Deterministic 64-bit mix of ``(seed, i)`` — the block seeder."""
    z = (seed * 0x9E3779B97F4A7C15 + (i + 1) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


_BLOCKS_METRIC = _metrics.REGISTRY.counter(
    "repro_validate_blocks_total",
    "validation campaign blocks folded into accumulators",
    ("engine", "source"),
)
_SAMPLES_METRIC = _metrics.REGISTRY.counter(
    "repro_validate_samples_total",
    "permutations consumed by validation campaigns",
    ("engine", "source"),
)
_ROUND_SECONDS = _metrics.REGISTRY.histogram(
    "repro_validate_round_seconds",
    "wall seconds per campaign round (one wave of shards + checkpoint)",
    buckets=(0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0),
)


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's statistics.

    ``source`` is ``"lfsr"`` (the paper's §III stack: per-block-seeded
    m-bit Fibonacci LFSR → Fig.-2 constant-multiply scaler → index) or
    ``"ideal"`` (PCG64 uniform indices, the calibration null).  Either
    way the *permutations* come from the gate-level converter netlist
    through the configured simulation engine.

    ``engine`` picks the simulation backend (``interp`` / ``compiled``
    / ``vector`` / ``auto``).  It is deliberately **excluded** from the
    fingerprint: all engines are bit-identical on the same netlist (the
    cross-engine test asserts it), so a campaign checkpointed under one
    engine may legally resume under another.
    """

    n: int = 8
    samples: int = 1_000_000
    seed: int = 2012
    source: str = "lfsr"
    engine: str = "vector"
    m: int = 31
    block: int = 4096
    buckets: int = DEFAULT_BUCKETS
    lags: tuple[int, ...] = (1, 2, 7)

    def validated(self) -> "CampaignConfig":
        if not (2 <= self.n <= 20):
            raise CampaignConfigError(f"n={self.n} outside 2..20 (int64 ranks)")
        if self.samples < 1:
            raise CampaignConfigError("samples must be positive")
        if self.source not in ("lfsr", "ideal"):
            raise CampaignConfigError(f"unknown source {self.source!r}")
        if self.engine not in ("interp", "compiled", "vector", "auto"):
            raise CampaignConfigError(f"unknown engine {self.engine!r}")
        if not (2 <= self.m <= 61):
            raise CampaignConfigError(f"m={self.m} outside 2..61")
        if self.block < 2:
            raise CampaignConfigError("block must be ≥ 2")
        if self.buckets < 2:
            raise CampaignConfigError("buckets must be ≥ 2")
        lags = tuple(int(lag) for lag in self.lags)
        if not lags or any(lag < 1 for lag in lags):
            raise CampaignConfigError("lags must be positive integers")
        return replace(self, lags=lags)

    @property
    def total_blocks(self) -> int:
        return -(-self.samples // self.block)

    def block_size(self, block_id: int) -> int:
        if block_id == self.total_blocks - 1:
            return self.samples - (self.total_blocks - 1) * self.block
        return self.block

    @property
    def cells(self) -> int:
        """The rank-bucket cell count this campaign will use (exact for
        small n!, residue buckets past it; Cochran-clamped)."""
        return effective_bucket_count(self.samples, self.buckets, self.n)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "samples": self.samples,
            "seed": self.seed,
            "source": self.source,
            "engine": self.engine,
            "m": self.m,
            "block": self.block,
            "buckets": self.buckets,
            "lags": list(self.lags),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CampaignConfig":
        cfg = cls(
            n=int(d["n"]),
            samples=int(d["samples"]),
            seed=int(d["seed"]),
            source=str(d["source"]),
            engine=str(d.get("engine", "vector")),
            m=int(d["m"]),
            block=int(d["block"]),
            buckets=int(d["buckets"]),
            lags=tuple(int(x) for x in d["lags"]),
        )
        return cfg.validated()

    def fingerprint(self) -> str:
        """Hash of every statistic-determining field (NOT the engine)."""
        key = (
            f"n={self.n};samples={self.samples};seed={self.seed};"
            f"source={self.source};m={self.m};block={self.block};"
            f"buckets={self.buckets};lags={','.join(map(str, self.lags))}"
        )
        return sha256(key.encode()).hexdigest()[:16]


# --------------------------------------------------------------------- #
# the permutation stream
# --------------------------------------------------------------------- #

#: Per-process memo of prepared converter entries: kernel compilation
#: and engine resolution happen once per (n, backend) per worker.
_ENTRY_CACHE: dict[tuple[int, str], Any] = {}


def _entry_for(n: int, backend: str):
    key = (n, backend)
    entry = _ENTRY_CACHE.get(key)
    if entry is None:
        from repro.core.converter import IndexToPermutationConverter
        from repro.hdl.simulator import BatchEntry

        entry = BatchEntry(
            IndexToPermutationConverter(n).build_netlist(), backend=backend
        )
        _ENTRY_CACHE[key] = entry
    return entry


def _block_indices(cfg: CampaignConfig, block_id: int) -> np.ndarray:
    """The converter indices of one block — pure function of (cfg, id)."""
    size = cfg.block_size(block_id)
    nfact = factorial(cfg.n)
    mixed = _splitmix64(cfg.seed, block_id)
    if cfg.source == "ideal":
        rng = np.random.Generator(np.random.PCG64(mixed))
        return rng.integers(0, nfact, size=size, dtype=np.int64)
    # Fibonacci LFSR seeds live in 1 .. 2^m − 1; fold the mix into that
    # range so every block gets an independent phase of the m-sequence.
    seed = mixed % ((1 << cfg.m) - 1) + 1
    gen = ScaledRandomInteger(nfact, m=cfg.m, seed=seed)
    return np.asarray(gen.ints(size), dtype=np.int64)


def stream_blocks(
    cfg: CampaignConfig, block_ids: Iterable[int]
) -> Iterator[np.ndarray]:
    """Lazily yield one ``(block, n)`` permutation array per block id.

    The converter netlist is swept through the configured engine with
    ``materialize=False`` — outputs stay in the engine's packed lane
    form until the ``n`` element buses are read back column-wise; no
    larger-than-block array ever exists.
    """
    entry = _entry_for(cfg.n, cfg.engine)
    ids = list(block_ids)
    inputs = ({"index": _block_indices(cfg, b)} for b in ids)
    sizes = (cfg.block_size(b) for b in ids)
    for outs, size in zip(entry.run_stream(inputs, materialize=False), sizes):
        perms = np.empty((size, cfg.n), dtype=np.int64)
        for t in range(cfg.n):
            perms[:, t] = outs[f"out{t}"]
        yield perms


# --------------------------------------------------------------------- #
# mergeable accumulators
# --------------------------------------------------------------------- #


class RankBucketAccumulator:
    """Counts of ``rank mod cells`` — the streaming Fig.-4 histogram.

    With ``cells = n!`` (small n) the residues *are* the ranks, so this
    degrades gracefully to the exact dense histogram; past the budget it
    is the residue-bucket scheme of :mod:`repro.analysis.uniformity`,
    whose null cell probabilities are exact at any scale.
    """

    kind = "rank_buckets"

    def __init__(self, n: int, cells: int):
        self.n = n
        self.cells = cells
        self.counts = np.zeros(cells, dtype=np.int64)

    def update(self, perms: np.ndarray) -> None:
        self.counts += rank_bucket_counts(perms, self.cells, validate=False)

    def state_dict(self) -> dict:
        return {"n": self.n, "cells": self.cells, "counts": self.counts.tolist()}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "RankBucketAccumulator":
        acc = cls(int(state["n"]), int(state["cells"]))
        acc.counts = np.array(state["counts"], dtype=np.int64)
        return acc

    @staticmethod
    def merge_state(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict:
        if (a["n"], a["cells"]) != (b["n"], b["cells"]):
            raise ValueError("merging rank-bucket accumulators of different shape")
        return {
            "n": a["n"],
            "cells": a["cells"],
            "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        }

    def summary(self) -> dict:
        samples = int(self.counts.sum())
        null = bucket_null_probabilities(self.n, self.cells)
        chi2, pv = chi_square_uniform(self.counts, expected=null * samples)
        nfact = factorial(self.n)
        # TV against the *exact* bucket null, not uniform: when cells
        # does not divide n! the null itself sits ~½·cells/(2·n!) from
        # uniform — a structural offset the shrinking noise floor drops
        # below at population scale, which would fail every unbiased
        # campaign past ~10⁷ samples.  (With cells == n! the null is
        # uniform and this is the ordinary TV.)
        if samples:
            tv = 0.5 * float(np.abs(self.counts / samples - null).sum())
        else:
            tv = 0.0
        return {
            "samples": samples,
            "cells": self.cells,
            "method": "exact" if self.cells == nfact else "buckets",
            "chi2": chi2,
            "p_value": pv,
            "tv_distance": tv,
            "tv_noise_floor": expected_tv_noise(self.cells, samples),
            "entropy_bits": empirical_entropy_bits(self.counts, num_cells=self.cells),
            "null_entropy_bits": float(-np.sum(null * np.log2(null))),
            "max_entropy_bits": float(np.log2(self.cells)),
        }


class FixedPointAccumulator:
    """Histogram of per-permutation fixed-point counts (§III-C).

    Cell 0 is the derangement count, so ``n!/d_n → e`` falls out of the
    same state; the whole histogram also yields the mean fixed-point
    count (→ 1 for uniform permutations).
    """

    kind = "fixed_points"

    def __init__(self, n: int):
        self.n = n
        self.hist = np.zeros(n + 1, dtype=np.int64)

    def update(self, perms: np.ndarray) -> None:
        fixed = (perms == np.arange(self.n, dtype=np.int64)).sum(axis=1)
        self.hist += np.bincount(fixed, minlength=self.n + 1)

    def state_dict(self) -> dict:
        return {"n": self.n, "hist": self.hist.tolist()}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "FixedPointAccumulator":
        acc = cls(int(state["n"]))
        acc.hist = np.array(state["hist"], dtype=np.int64)
        return acc

    @staticmethod
    def merge_state(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict:
        if a["n"] != b["n"]:
            raise ValueError("merging fixed-point accumulators of different n")
        return {"n": a["n"], "hist": [x + y for x, y in zip(a["hist"], b["hist"])]}

    def summary(self) -> dict:
        samples = int(self.hist.sum())
        der = int(self.hist[0])
        p_null = subfactorial(self.n) / factorial(self.n)
        frac = der / samples if samples else 0.0
        sigma = math.sqrt(p_null * (1 - p_null) / samples) if samples else float("inf")
        z = (frac - p_null) / sigma if samples else 0.0
        mean_fixed = (
            float((self.hist * np.arange(self.n + 1)).sum()) / samples
            if samples
            else 0.0
        )
        return {
            "samples": samples,
            "histogram": self.hist.tolist(),
            "derangements": der,
            "derangement_fraction": frac,
            "expected_fraction": p_null,
            "abs_error": abs(frac - p_null),
            "z": z,
            "p_value": normal_survival(z),
            "e_estimate": samples / der if der else float("inf"),
            "e_abs_error": abs(samples / der - math.e) if der else float("inf"),
            "mean_fixed_points": mean_fixed,
        }


class SerialCorrelationAccumulator:
    """Streaming lag-k autocorrelation of successive first elements.

    Operates on ``perm[0]`` — for the unrank stream that *is* the
    scaled draw ``⌊n·x/2^m⌋`` (the identity
    ``⌊⌊n!x/2^m⌋/(n−1)!⌋ = ⌊n·x/2^m⌋``), so the statistic sees the raw
    m-sequence's shift correlation undiluted; hashed ranks would erase
    it.  Pairs are formed only *within* an update block (blocks are
    independently seeded, so cross-block pairs carry no signal), which
    is also what makes the state mergeable: per-lag integer sums
    (pairs, Σx, Σy, Σx², Σy², Σxy) over disjoint pair sets simply add.
    Values are < n ≤ 20, so the sums are exact integers at any scale.
    """

    kind = "serial"

    def __init__(self, n: int, lags: tuple[int, ...]):
        self.n = n
        self.lags = tuple(lags)
        self.sums = {lag: [0, 0, 0, 0, 0, 0] for lag in self.lags}

    def update(self, perms: np.ndarray) -> None:
        v = perms[:, 0]
        for lag in self.lags:
            if len(v) <= lag:
                continue
            x = v[:-lag]
            y = v[lag:]
            s = self.sums[lag]
            s[0] += len(x)
            s[1] += int(x.sum())
            s[2] += int(y.sum())
            s[3] += int((x * x).sum())
            s[4] += int((y * y).sum())
            s[5] += int((x * y).sum())

    def state_dict(self) -> dict:
        return {
            "n": self.n,
            "lags": list(self.lags),
            "sums": {str(lag): list(s) for lag, s in self.sums.items()},
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SerialCorrelationAccumulator":
        acc = cls(int(state["n"]), tuple(int(x) for x in state["lags"]))
        acc.sums = {
            lag: [int(v) for v in state["sums"][str(lag)]] for lag in acc.lags
        }
        return acc

    @staticmethod
    def merge_state(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict:
        if (a["n"], list(a["lags"])) != (b["n"], list(b["lags"])):
            raise ValueError("merging serial accumulators of different shape")
        return {
            "n": a["n"],
            "lags": list(a["lags"]),
            "sums": {
                key: [x + y for x, y in zip(a["sums"][key], b["sums"][key])]
                for key in a["sums"]
            },
        }

    def summary(self) -> dict:
        out: dict[str, Any] = {"lags": {}}
        for lag in self.lags:
            pairs, sx, sy, sxx, syy, sxy = self.sums[lag]
            if pairs < 2:
                out["lags"][str(lag)] = {"pairs": pairs, "r": 0.0, "p_value": 1.0}
                continue
            cov = pairs * sxy - sx * sy
            var_x = pairs * sxx - sx * sx
            var_y = pairs * syy - sy * sy
            denom = math.sqrt(float(var_x) * float(var_y))
            r = float(cov) / denom if denom else 0.0
            z = r * math.sqrt(pairs)
            out["lags"][str(lag)] = {
                "pairs": pairs,
                "r": r,
                "z": z,
                "p_value": normal_survival(z),
            }
        return out


class FirstElementBiasAccumulator:
    """The Fig.-2 pigeonhole bias, observed on the first output element.

    ``perm[0] = ⌊n·x/2^m⌋`` for the unrank stream, so its law is exactly
    the closed-form :func:`repro.rng.scaled.bias_profile` ``(k=n, m)``
    over the 2^m − 1 LFSR states — the empirical max/min ratio converges
    to the profile's, which is how the campaign charts the paper's
    pigeonhole curve at population scale.  For the ideal source the law
    is exactly uniform (n! is divisible by (n−1)!·n).
    """

    kind = "first_element"

    def __init__(self, n: int, m: int, source: str):
        self.n = n
        self.m = m
        self.source = source
        self.counts = np.zeros(n, dtype=np.int64)

    def update(self, perms: np.ndarray) -> None:
        self.counts += np.bincount(perms[:, 0], minlength=self.n)

    def state_dict(self) -> dict:
        return {
            "n": self.n,
            "m": self.m,
            "source": self.source,
            "counts": self.counts.tolist(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "FirstElementBiasAccumulator":
        acc = cls(int(state["n"]), int(state["m"]), str(state["source"]))
        acc.counts = np.array(state["counts"], dtype=np.int64)
        return acc

    @staticmethod
    def merge_state(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict:
        if (a["n"], a["m"], a["source"]) != (b["n"], b["m"], b["source"]):
            raise ValueError("merging bias accumulators of different shape")
        return {
            "n": a["n"],
            "m": a["m"],
            "source": a["source"],
            "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        }

    def _null(self) -> np.ndarray:
        if self.source == "ideal":
            return np.full(self.n, 1.0 / self.n)
        profile = bias_profile(self.n, self.m)
        return np.array(profile.counts, dtype=np.float64) / profile.period

    def summary(self) -> dict:
        samples = int(self.counts.sum())
        null = self._null()
        observed = self.counts / samples if samples else np.zeros(self.n)
        tv_null = 0.5 * float(np.abs(observed - null).sum()) if samples else 0.0
        chi2, pv = (
            chi_square_uniform(self.counts, expected=null * samples)
            if samples
            else (0.0, 1.0)
        )
        expected_profile = bias_profile(self.n, self.m)
        lo = self.counts.min()
        return {
            "samples": samples,
            "counts": self.counts.tolist(),
            "observed_ratio": float(self.counts.max() / lo) if lo else float("inf"),
            "expected_ratio": expected_profile.ratio,
            "expected_max_relative_error": expected_profile.max_relative_error,
            "tv_from_null": tv_null,
            "tv_noise_floor": expected_tv_noise(self.n, samples),
            "chi2": chi2,
            "p_value": pv,
        }


#: kind → class, for state-dict reconstruction and generic merging.
ACCUMULATOR_KINDS = {
    cls.kind: cls
    for cls in (
        RankBucketAccumulator,
        FixedPointAccumulator,
        SerialCorrelationAccumulator,
        FirstElementBiasAccumulator,
    )
}

#: Version tag of accumulator state dicts and checkpoint payloads.
STATE_VERSION = "repro-analysis/1"


def expected_tv_noise(cells: int, samples: int) -> float:
    """E[TV] of a *uniform* multinomial sample from its own law.

    ``E|p̂_i − p_i| ≈ √(2 p_i (1−p_i) / (π N))`` per cell, summed and
    halved: ``≈ ½ √(2·cells / (π·N))``.  The verdict gates observed TV
    against a multiple of this floor — raw TV never converges to zero
    at fixed N, so comparing it to zero (or to a fixed threshold) would
    either always fail small samples or never catch anything.
    """
    if samples <= 0:
        return float("inf")
    return 0.5 * math.sqrt(2.0 * cells / (math.pi * samples))


# --------------------------------------------------------------------- #
# the per-shard stats object
# --------------------------------------------------------------------- #


@dataclass
class PopulationStats:
    """One campaign's full accumulator set, streamed block by block."""

    config: CampaignConfig
    samples: int
    accumulators: dict[str, Any]

    @classmethod
    def fresh(cls, cfg: CampaignConfig) -> "PopulationStats":
        return cls(
            config=cfg,
            samples=0,
            accumulators={
                "rank_buckets": RankBucketAccumulator(cfg.n, cfg.cells),
                "fixed_points": FixedPointAccumulator(cfg.n),
                "serial": SerialCorrelationAccumulator(cfg.n, cfg.lags),
                "first_element": FirstElementBiasAccumulator(
                    cfg.n, cfg.m, cfg.source
                ),
            },
        )

    def update(self, perms: np.ndarray) -> None:
        self.samples += len(perms)
        for acc in self.accumulators.values():
            acc.update(perms)

    def state_dict(self) -> dict:
        return {
            "version": STATE_VERSION,
            "samples": self.samples,
            "accumulators": {
                kind: acc.state_dict() for kind, acc in self.accumulators.items()
            },
        }

    @classmethod
    def from_state(
        cls, cfg: CampaignConfig, state: Mapping[str, Any]
    ) -> "PopulationStats":
        return cls(
            config=cfg,
            samples=int(state["samples"]),
            accumulators={
                kind: ACCUMULATOR_KINDS[kind].from_state(sub)
                for kind, sub in state["accumulators"].items()
            },
        )

    def summary(self) -> dict:
        out = {"samples": self.samples}
        for kind, acc in self.accumulators.items():
            out[kind] = acc.summary()
        return out


def merge_states(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict:
    """Merge two accumulator state dicts — associative, commutative,
    pure-integer, and therefore exactly order-independent.

    This is the reduce function handed to ``hardened_map_reduce`` (state
    dicts are plain JSON types, so they cross process boundaries and
    land in checkpoints unchanged).
    """
    if a["version"] != b["version"]:
        raise ValueError("merging incompatible state versions")
    if set(a["accumulators"]) != set(b["accumulators"]):
        raise ValueError("merging states with different accumulator sets")
    return {
        "version": a["version"],
        "samples": a["samples"] + b["samples"],
        "accumulators": {
            kind: ACCUMULATOR_KINDS[kind].merge_state(
                a["accumulators"][kind], b["accumulators"][kind]
            )
            for kind in a["accumulators"]
        },
    }


class _ShardWorker:
    """Top-level picklable shard body: stream the shard's block range
    through the engine, fold into fresh accumulators, return the state
    dict.  ``hardened_map_reduce`` wraps it with retries, timeouts,
    crash recovery and per-shard tracer spans."""

    def __init__(self, cfg: CampaignConfig):
        self.cfg = cfg

    def __call__(self, shard: ShardSpec) -> dict:
        stats = PopulationStats.fresh(self.cfg)
        for perms in stream_blocks(self.cfg, range(shard.start, shard.stop)):
            stats.update(perms)
        return stats.state_dict()


# --------------------------------------------------------------------- #
# verdict, battery, pigeonhole curve
# --------------------------------------------------------------------- #


def campaign_verdict(
    cfg: CampaignConfig, summary: Mapping[str, Any], alpha: float = DEFAULT_ALPHA
) -> dict:
    """Named pass/fail gates over a campaign summary.

    ``source="ideal"`` gates on p-values (the stream is genuinely iid,
    so the chi-square/normal nulls apply and a seeded campaign sits far
    from ``alpha``).  Hardware sources gate on effect sizes: the
    m-sequence is deterministic, so at population scale iid p-values
    would flag its (physically negligible, closed-form-known)
    structure; what production cares about is that the *measured
    deviations stay at their predicted magnitudes*.
    """
    ideal = cfg.source == "ideal"
    uni = summary["rank_buckets"]
    fx = summary["fixed_points"]
    fe = summary["first_element"]
    gates: dict[str, bool] = {}
    if ideal:
        gates["uniformity"] = uni["p_value"] >= alpha
        gates["first_element"] = fe["p_value"] >= alpha
    else:
        gates["uniformity"] = (
            uni["tv_distance"] <= 3.0 * uni["tv_noise_floor"] + EFFECT_SLACK
        )
        gates["first_element"] = (
            fe["tv_from_null"] <= 3.0 * fe["tv_noise_floor"] + EFFECT_SLACK
        )
    sigma = math.sqrt(
        fx["expected_fraction"]
        * (1 - fx["expected_fraction"])
        / max(1, fx["samples"])
    )
    gates["derangements"] = fx["abs_error"] <= 5.0 * sigma + 1e-4
    serial_ok = True
    for lag_stats in summary["serial"]["lags"].values():
        if ideal:
            serial_ok = serial_ok and lag_stats["p_value"] >= alpha
        else:
            serial_ok = serial_ok and abs(lag_stats["r"]) <= SERIAL_ENVELOPE
    gates["serial"] = serial_ok
    return {
        "alpha": alpha,
        "mode": "p_value" if ideal else "effect_size",
        "gates": gates,
        "serial_expected_artifact": not ideal,
        "passed": all(gates.values()),
    }


def battery_report(cfg: CampaignConfig, draws: int = 4096) -> dict:
    """The :mod:`repro.analysis.randtests` battery over the campaign's
    raw RNG stack, as a JSON-ready dict.

    Monobit and runs gate (an m-sequence passes them by design); the
    serial lags of *raw words* are flagged ``expected_artifact`` —
    successive states are one-bit shifts, the documented LFSR property —
    and excluded from ``passed``.
    """
    from repro.analysis.randtests import battery
    from repro.rng.lfsr import FibonacciLFSR, dense_seed

    lfsr = FibonacciLFSR(cfg.m, seed=dense_seed(cfg.m, salt=cfg.seed))
    results = []
    passed = True
    for res in battery(lfsr, draws=draws, lags=cfg.lags):
        artifact = res.name.startswith("serial_lag")
        if not artifact:
            passed = passed and res.p_value >= 1e-4
        results.append(
            {
                "name": res.name,
                "statistic": res.statistic,
                "p_value": res.p_value,
                "expected_artifact": artifact,
            }
        )
    return {"draws": draws, "results": results, "passed": passed}


def pigeonhole_curve(
    k: int, ms: Sequence[int] = tuple(range(8, 49, 4))
) -> list[dict]:
    """The Fig.-2 bias curve — closed form, at arbitrary m.

    One point per modulus width: the exact max/min cell-probability
    ratio and max relative error of the constant-multiply scaler for
    ``k`` outputs.  The paper stops at m = 31; this is how the report
    charts the curve far past it (the closed form costs O(k) per point,
    so population scale is free).
    """
    points = []
    for m in ms:
        profile = bias_profile(k, m)
        points.append(
            {
                "m": m,
                "ratio": profile.ratio,
                "max_relative_error": profile.max_relative_error,
            }
        )
    return points


# --------------------------------------------------------------------- #
# the campaign driver
# --------------------------------------------------------------------- #


#: Post-round seam (mirrors ``sharding._monotonic``/``_sleep``): called
#: after each round's checkpoint lands.  The kill-and-resume test
#: replaces it to abort a campaign mid-flight at a known-durable point.
_after_round: Callable[[int, dict], None] = lambda round_index, state: None


@dataclass
class CampaignResult:
    """A finished campaign: config, merged stats, verdict, runtime."""

    config: CampaignConfig
    stats: PopulationStats
    summary: dict
    verdict: dict
    battery: dict | None
    wall_s: float
    perms_per_s: float
    shards: int
    rounds: int
    resumed: bool
    checkpoint_path: str | None = None

    def payload(self) -> dict:
        """The versioned ``repro-analysis/1`` report document."""
        return {
            "version": STATE_VERSION,
            "kind": "report",
            "fingerprint": self.config.fingerprint(),
            "config": self.config.to_dict(),
            "summary": self.summary,
            "verdict": self.verdict,
            "battery": self.battery,
            "pigeonhole_curve": pigeonhole_curve(self.config.n),
            "runtime": {
                "wall_s": self.wall_s,
                "perms_per_s": self.perms_per_s,
                "shards": self.shards,
                "rounds": self.rounds,
                "resumed": self.resumed,
            },
        }

    def render(self) -> str:
        """Human-readable report (the CLI's stdout)."""
        cfg = self.config
        s = self.summary
        uni, fx, fe = s["rank_buckets"], s["fixed_points"], s["first_element"]
        lines = [
            "population validation "
            f"(n={cfg.n}, source={cfg.source}, engine={cfg.engine}, "
            f"m={cfg.m}, seed={cfg.seed})",
            f"  samples            {s['samples']:>14,}"
            f"   ({self.perms_per_s:,.0f} perms/s over {self.wall_s:.2f}s, "
            f"{self.shards} shard(s), {self.rounds} round(s)"
            + (", resumed)" if self.resumed else ")"),
            f"  uniformity         chi2={uni['chi2']:.1f} over {uni['cells']} "
            f"cells ({uni['method']})  p={uni['p_value']:.3g}",
            f"                     tv={uni['tv_distance']:.3e} "
            f"(noise floor {uni['tv_noise_floor']:.3e})  "
            f"H={uni['entropy_bits']:.4f}/{uni['null_entropy_bits']:.4f} bits",
            f"  derangements       {fx['derangement_fraction']:.6f} "
            f"(1/e={fx['expected_fraction']:.6f})  "
            f"e≈{fx['e_estimate']:.6f}  |Δ|={fx['e_abs_error']:.2e}",
            f"  first element      ratio={fe['observed_ratio']:.6f} "
            f"(closed form {fe['expected_ratio']:.6f})  "
            f"tv_null={fe['tv_from_null']:.3e}",
        ]
        for lag, st in s["serial"]["lags"].items():
            note = (
                "  [expected m-sequence artifact]"
                if self.verdict.get("serial_expected_artifact")
                else ""
            )
            lines.append(
                f"  serial lag-{lag:<7} r={st['r']:+.4f}  "
                f"p={st.get('p_value', 1.0):.3g}{note}"
            )
        if self.battery is not None:
            verdict = "pass" if self.battery["passed"] else "FAIL"
            lines.append(
                f"  rng battery        {verdict} over {self.battery['draws']} draws"
            )
        gates = " ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in self.verdict["gates"].items()
        )
        lines.append(
            f"  verdict            {'PASS' if self.verdict['passed'] else 'FAIL'} "
            f"[{self.verdict['mode']}] {gates}"
        )
        return "\n".join(lines)


def run_population_campaign(
    cfg: CampaignConfig,
    *,
    shards: int = 1,
    workers: int | None = None,
    checkpoint_path=None,
    resume: bool = False,
    checkpoint_every: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    alpha: float = DEFAULT_ALPHA,
    battery_draws: int | None = 4096,
    tracer=None,
    events=None,
) -> CampaignResult:
    """Run (or resume) a sharded streaming validation campaign.

    The campaign is ``cfg.total_blocks`` deterministic blocks split into
    ``shards`` contiguous ranges (``index_shards``), executed in rounds
    of ``checkpoint_every`` shards through ``hardened_map_reduce`` —
    retries, per-shard timeouts, worker-crash recovery and tracer spans
    come from there.  After every round the merged state is written
    atomically to ``checkpoint_path`` (schema ``repro-analysis/1``), so
    a killed campaign resumes with ``resume=True`` losing at most one
    round — and, because state is pure-integer and block-deterministic,
    the resumed result is **bit-identical** to an uninterrupted run.

    On resume the shard decomposition stored in the checkpoint wins over
    the ``shards`` argument (completed ranges must stay aligned), and a
    checkpoint whose config fingerprint disagrees with ``cfg`` raises
    :class:`~repro.errors.CheckpointMismatchError` rather than merging
    statistics of two different populations.
    """
    from repro.analysis import checkpoint as _ckpt

    cfg = cfg.validated()
    total = cfg.total_blocks
    shards = max(1, min(shards, total))
    state: dict | None = None
    completed: list[tuple[int, int]] = []
    resumed = False
    if resume:
        if checkpoint_path is None:
            raise CampaignConfigError("resume requires a checkpoint path")
        payload = _ckpt.load_checkpoint(checkpoint_path)
        if payload["fingerprint"] != cfg.fingerprint():
            raise CheckpointMismatchError(
                f"checkpoint fingerprint {payload['fingerprint']} does not match "
                f"campaign {cfg.fingerprint()} — refusing to merge different "
                "populations",
                path=str(checkpoint_path),
            )
        shards = int(payload["shards"])
        completed = [(int(a), int(b)) for a, b in payload["completed"]]
        state = payload["state"] if payload["state"] is not None else None
        resumed = True

    specs = index_shards(total, shards)
    done = set(completed)
    pending = [spec for spec in specs if (spec.start, spec.stop) not in done]
    effective_workers = workers if workers is not None else default_workers()
    if checkpoint_every is None:
        checkpoint_every = (
            max(1, effective_workers) if checkpoint_path is not None else len(specs)
        )
    worker = _ShardWorker(cfg)

    t0 = time.perf_counter()
    rounds = 0
    for lo in range(0, len(pending), max(1, checkpoint_every)):
        wave = pending[lo : lo + max(1, checkpoint_every)]
        round_t0 = time.perf_counter()
        wave_state = hardened_map_reduce(
            worker,
            wave,
            merge_states,
            workers=workers,
            timeout=timeout,
            retries=retries,
            tracer=tracer,
            events=events,
        )
        state = wave_state if state is None else merge_states(state, wave_state)
        completed.extend((spec.start, spec.stop) for spec in wave)
        rounds += 1
        wave_samples = sum(
            sum(cfg.block_size(b) for b in range(spec.start, spec.stop))
            for spec in wave
        )
        wave_blocks = sum(spec.size for spec in wave)
        _BLOCKS_METRIC.inc(wave_blocks, engine=cfg.engine, source=cfg.source)
        _SAMPLES_METRIC.inc(wave_samples, engine=cfg.engine, source=cfg.source)
        _ROUND_SECONDS.observe(time.perf_counter() - round_t0)
        if checkpoint_path is not None:
            _ckpt.save_checkpoint(
                checkpoint_path,
                _ckpt.checkpoint_payload(cfg, state, completed, shards),
            )
        _after_round(rounds - 1, state)
    wall = time.perf_counter() - t0

    if state is None:  # resumed with nothing pending and an empty state
        raise CampaignConfigError("checkpoint holds no state and no work is pending")
    stats = PopulationStats.from_state(cfg, state)
    summary = stats.summary()
    verdict = campaign_verdict(cfg, summary, alpha=alpha)
    battery = battery_report(cfg, battery_draws) if battery_draws else None
    if battery is not None:
        verdict["gates"]["battery"] = battery["passed"]
        verdict["passed"] = verdict["passed"] and battery["passed"]
    return CampaignResult(
        config=cfg,
        stats=stats,
        summary=summary,
        verdict=verdict,
        battery=battery,
        wall_s=wall,
        perms_per_s=stats.samples / wall if wall > 0 else float("inf"),
        shards=shards,
        rounds=rounds,
        resumed=resumed,
        checkpoint_path=str(checkpoint_path) if checkpoint_path else None,
    )
