"""Derangement counting and the Monte-Carlo estimate of e (§III-C).

A derangement has no fixed point.  The count is the subfactorial
``d_n = round(n!/e)``, so the fraction of derangements among uniform random
permutations tends to ``1/e`` and ``samples/derangements`` estimates ``e``.
The paper runs 2²⁰ Knuth-shuffle permutations at n = 4 (counting 385,811 ≈
2²⁰/e derangements gives e ≈ 2.72) and repeats at n = 8 and 16; this module
provides the exact combinatorics and the vectorised experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.factorial import factorial
from repro.core.knuth import KnuthShuffleCircuit

__all__ = [
    "subfactorial",
    "derangement_probability",
    "derangement_mask",
    "fixed_point_counts",
    "DerangementResult",
    "derangement_experiment",
    "estimate_e",
]


@lru_cache(maxsize=None)
def subfactorial(n: int) -> int:
    """Number of derangements ``d_n`` (exact recurrence
    ``d_n = (n−1)(d_{n−1} + d_{n−2})``)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 1
    if n == 1:
        return 0
    return (n - 1) * (subfactorial(n - 1) + subfactorial(n - 2))


def derangement_probability(n: int) -> float:
    """Exact ``d_n / n!`` — tends to ``1/e`` rapidly."""
    return subfactorial(n) / factorial(n)


def fixed_point_counts(perms: np.ndarray) -> np.ndarray:
    """Per-row number of fixed points of a ``(B, n)`` permutation array."""
    p = np.asarray(perms)
    return (p == np.arange(p.shape[1])).sum(axis=1)


def derangement_mask(perms: np.ndarray) -> np.ndarray:
    """Boolean row mask: True where the row is a derangement."""
    return fixed_point_counts(perms) == 0


def estimate_e(samples: int, derangements: int) -> float:
    """The paper's estimator: ``e ≈ samples / derangements``."""
    if derangements <= 0:
        raise ValueError("no derangements observed; cannot estimate e")
    return samples / derangements


@dataclass(frozen=True)
class DerangementResult:
    """Outcome of one §III-C run."""

    n: int
    samples: int
    derangements: int

    @property
    def e_estimate(self) -> float:
        return estimate_e(self.samples, self.derangements)

    @property
    def expected_fraction(self) -> float:
        return derangement_probability(self.n)

    @property
    def observed_fraction(self) -> float:
        return self.derangements / self.samples

    @property
    def e_error(self) -> float:
        """Relative error of the estimate against the true e, after
        correcting for the exact d_n/n! ≠ 1/e at finite n."""
        return abs(self.e_estimate - np.e) / np.e


def derangement_experiment(
    n: int,
    samples: int = 1 << 20,
    circuit: KnuthShuffleCircuit | None = None,
    batch: int = 1 << 16,
) -> DerangementResult:
    """Run the §III-C experiment: sample shuffles, count derangements.

    Streams in batches so 2²⁰ samples at n = 16 stay memory-light.
    """
    circuit = circuit if circuit is not None else KnuthShuffleCircuit(n, m=31)
    if circuit.n != n:
        raise ValueError("circuit size mismatch")
    count = 0
    remaining = samples
    while remaining > 0:
        chunk = min(batch, remaining)
        perms = circuit.sample(chunk)
        count += int(derangement_mask(perms).sum())
        remaining -= chunk
    return DerangementResult(n=n, samples=samples, derangements=count)
