"""A small randomness test battery for the hardware generators.

Fig. 4 eyeballs uniformity; production use of the generators (Monte
Carlo, §III) deserves sharper instruments.  The battery covers the
classic cheap tests, each returning a p-value against the null of ideal
randomness:

* :func:`monobit_test` — balance of ones in a bitstream;
* :func:`runs_test` — Wald–Wolfowitz runs in a bitstream;
* :func:`serial_correlation` — lag-k autocorrelation of word outputs;
* :func:`permutation_chi2` — the Fig.-4 chi-square lifted to any n;
* :func:`battery` — run everything over an LFSR/shuffle and summarise.

LFSR sequences famously pass balance/runs tests within one period (their
design property) while failing *linear-complexity* tests — which is fine
for the paper's Monte-Carlo use and is documented behaviour, not a bug.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.uniformity import DEFAULT_BUCKETS, uniformity_report
from repro.rng.lfsr import LFSRBase

__all__ = [
    "monobit_test",
    "runs_test",
    "serial_correlation",
    "permutation_chi2",
    "TestResult",
    "battery",
]


@dataclass(frozen=True)
class TestResult:
    name: str
    statistic: float
    p_value: float

    @property
    def passed(self) -> bool:
        """Conventional 1 % significance."""
        return self.p_value > 0.01


def _as_bits(bits: np.ndarray) -> np.ndarray:
    b = np.asarray(bits).astype(np.int8).ravel()
    if b.size == 0 or not np.isin(b, (0, 1)).all():
        raise ValueError("need a non-empty 0/1 array")
    return b


def monobit_test(bits: np.ndarray) -> TestResult:
    """NIST SP 800-22 frequency test: #ones ≈ #zeros."""
    b = _as_bits(bits)
    s = float(np.abs(2.0 * b.sum() - b.size)) / math.sqrt(b.size)
    p = math.erfc(s / math.sqrt(2.0))
    return TestResult("monobit", s, p)


def runs_test(bits: np.ndarray) -> TestResult:
    """Wald–Wolfowitz runs test on a bitstream."""
    b = _as_bits(bits)
    n = b.size
    pi = b.mean()
    if pi in (0.0, 1.0):
        return TestResult("runs", float("inf"), 0.0)
    runs = 1 + int((b[1:] != b[:-1]).sum())
    expected = 2.0 * n * pi * (1 - pi) + 1
    sigma = 2.0 * math.sqrt(n) * pi * (1 - pi)
    z = (runs - expected) / sigma
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return TestResult("runs", z, p)


def serial_correlation(words: np.ndarray, lag: int = 1) -> TestResult:
    """Lag-``lag`` autocorrelation of a word sequence, z-tested.

    Under randomness the sample autocorrelation is ~N(0, 1/N).
    """
    w = np.asarray(words, dtype=np.float64).ravel()
    if w.size <= lag + 1:
        raise ValueError("sequence too short for this lag")
    a = w[:-lag] - w[:-lag].mean()
    b = w[lag:] - w[lag:].mean()
    denom = math.sqrt(float((a * a).sum() * (b * b).sum()))
    if denom == 0.0:
        return TestResult(f"serial_lag{lag}", float("inf"), 0.0)
    r = float((a * b).sum()) / denom
    z = r * math.sqrt(w.size - lag)
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return TestResult(f"serial_lag{lag}", z, p)


def permutation_chi2(perms: np.ndarray, *, buckets: int = DEFAULT_BUCKETS) -> TestResult:
    """The Fig.-4 uniformity test generalised to any n.

    Small n uses one chi-square cell per rank; past the dense-cell
    budget the sample is routed through residue rank buckets (see
    :func:`repro.analysis.uniformity.uniformity_report`) instead of
    allocating n! cells — ``buckets`` caps the bucketed cell count.
    """
    rep = uniformity_report(np.asarray(perms), buckets=buckets)
    return TestResult("permutation_chi2", rep.chi2, rep.p_value)


def battery(
    lfsr: LFSRBase,
    draws: int = 4096,
    lags: tuple[int, ...] = (1, 2, 7),
) -> list[TestResult]:
    """Run the full battery over one generator's output words."""
    raw = lfsr.words(draws)
    if raw.dtype == object:  # width > 64: bigints need an explicit pass
        lsb = np.array([int(w) & 1 for w in raw], dtype=np.int8)
        words = np.array([int(w) for w in raw], dtype=np.float64)
    else:
        lsb = (raw.astype(np.uint64) & np.uint64(1)).astype(np.int8)
        words = raw.astype(np.float64)
    results = [monobit_test(lsb), runs_test(lsb)]
    for lag in lags:
        results.append(serial_correlation(words, lag=lag))
    return results
