"""Special functions for the analysis layer — stdlib/numpy only.

The streaming validation pipeline and the serving hosts must not drag in
scipy for two tail probabilities, so the pair of special functions the
analysis layer actually needs lives here:

* :func:`regularized_gamma_p` / :func:`regularized_gamma_q` — the
  regularised lower/upper incomplete gamma functions ``P(a, x)`` and
  ``Q(a, x) = 1 − P(a, x)``, by the classic series / continued-fraction
  split (series converges fast for ``x < a + 1``, the Lentz continued
  fraction elsewhere — the same split Numerical Recipes uses);
* :func:`chi2_survival` — the chi-square upper tail
  ``P[X²_df ≥ stat] = Q(df/2, stat/2)``, the only thing
  ``analysis/uniformity.py`` ever asked scipy for;
* :func:`normal_survival` — the two-sided normal tail via
  ``math.erfc``, shared by the z-tested battery statistics.

This mirrors the precedent set by ``analysis/faultcoverage.py``, which
already carries its own ``_erfinv`` rather than import scipy.  Accuracy
is far beyond statistical need: against scipy (where available) the
results agree to ~1e-12 relative over the tested range, versus p-value
thresholds of 0.01.
"""

from __future__ import annotations

import math

__all__ = [
    "regularized_gamma_p",
    "regularized_gamma_q",
    "chi2_survival",
    "normal_survival",
]

#: Iteration cap for the series / continued fraction.  Both converge in
#: tens of terms for any argument the analysis layer produces; the cap
#: only bounds pathological inputs.
_MAX_ITER = 2000

#: Relative convergence target — well below float64 round-off noise
#: accumulated over the iteration, far below statistical relevance.
_EPS = 1e-15

#: Smallest representable pivot for the Lentz continued fraction.
_TINY = 1e-300


def _gamma_p_series(a: float, x: float) -> float:
    """Series expansion of P(a, x); best for ``x < a + 1``."""
    term = 1.0 / a
    total = term
    denom = a
    for _ in range(_MAX_ITER):
        denom += 1.0
        term *= x / denom
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_q_contfrac(a: float, x: float) -> float:
    """Lentz continued fraction for Q(a, x); best for ``x ≥ a + 1``."""
    b = x + 1.0 - a
    c = 1.0 / _TINY
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _TINY:
            d = _TINY
        c = b + an / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def regularized_gamma_p(a: float, x: float) -> float:
    """Regularised lower incomplete gamma ``P(a, x)``, for a > 0, x ≥ 0."""
    if a <= 0.0:
        raise ValueError("shape parameter a must be positive")
    if x < 0.0:
        raise ValueError("argument x must be non-negative")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return min(1.0, _gamma_p_series(a, x))
    return max(0.0, 1.0 - _gamma_q_contfrac(a, x))


def regularized_gamma_q(a: float, x: float) -> float:
    """Regularised upper incomplete gamma ``Q(a, x) = 1 − P(a, x)``."""
    if a <= 0.0:
        raise ValueError("shape parameter a must be positive")
    if x < 0.0:
        raise ValueError("argument x must be non-negative")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return max(0.0, 1.0 - _gamma_p_series(a, x))
    return min(1.0, _gamma_q_contfrac(a, x))


def chi2_survival(stat: float, df: int) -> float:
    """Upper-tail probability ``P[X²_df ≥ stat]`` of the chi-square law.

    The p-value of every goodness-of-fit test in the analysis layer.
    ``df`` must be a positive integer; ``stat`` is clamped at 0 from
    below (tiny negative statistics arise from float cancellation when a
    histogram is exactly uniform).
    """
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    s = max(0.0, float(stat))
    return regularized_gamma_q(df / 2.0, s / 2.0)


def normal_survival(z: float) -> float:
    """Two-sided standard-normal tail ``P[|Z| ≥ |z|] = erfc(|z|/√2)``."""
    return math.erfc(abs(z) / math.sqrt(2.0))
