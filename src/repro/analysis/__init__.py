"""Statistical and structural analysis of the generators.

* :mod:`repro.analysis.derangements` — the §III-C experiment: count
  derangements among random permutations and estimate ``e ≈ n!/d_n``;
* :mod:`repro.analysis.uniformity` — chi-square / total-variation /
  entropy tests of permutation uniformity;
* :mod:`repro.analysis.distribution` — the Fig.-4 histogram of 2²⁰ random
  4-element permutations keyed by the packed 8-bit word;
* :mod:`repro.analysis.complexity` — the §II-D / §III-C complexity claims
  (O(n²) comparators/crossovers, O(n) delay) checked against real
  netlists, with least-squares exponents;
* :mod:`repro.analysis.faultcoverage` — confidence intervals and sample
  sizing for the sampled fault-injection campaigns;
* :mod:`repro.analysis.special` — the chi-square/normal tail functions
  (regularised incomplete gamma), stdlib-only — no scipy;
* :mod:`repro.analysis.stream` — population-scale streaming validation:
  mergeable accumulators over lazily-streamed engine output, sharded
  campaigns with checkpoint/resume (:mod:`repro.analysis.checkpoint`).
"""

from repro.analysis.derangements import (
    subfactorial,
    derangement_mask,
    DerangementResult,
    derangement_experiment,
    estimate_e,
)
from repro.analysis.special import (
    chi2_survival,
    normal_survival,
    regularized_gamma_p,
    regularized_gamma_q,
)
from repro.analysis.uniformity import (
    chi_square_uniform,
    total_variation_from_uniform,
    empirical_entropy_bits,
    entropy_deficit_bits,
    rank_bucket_counts,
    bucket_null_probabilities,
    UniformityReport,
    uniformity_report,
)
from repro.analysis.stream import (
    CampaignConfig,
    CampaignResult,
    PopulationStats,
    run_population_campaign,
)
from repro.analysis.distribution import (
    permutation_histogram,
    packed_histogram,
    fig4_experiment,
    Fig4Result,
)
from repro.analysis.randtests import (
    monobit_test,
    runs_test,
    serial_correlation,
    permutation_chi2,
    battery,
    TestResult,
)
from repro.analysis.mixing import (
    MixingCurve,
    transposition_walk_tv,
    shuffle_vs_walk,
    cutoff_estimate,
)
from repro.analysis.complexity import (
    ComplexityReport,
    converter_complexity,
    shuffle_complexity,
    fit_power_law,
)
from repro.analysis.faultcoverage import required_samples, wilson_interval

__all__ = [
    "subfactorial",
    "derangement_mask",
    "DerangementResult",
    "derangement_experiment",
    "estimate_e",
    "chi2_survival",
    "normal_survival",
    "regularized_gamma_p",
    "regularized_gamma_q",
    "chi_square_uniform",
    "total_variation_from_uniform",
    "empirical_entropy_bits",
    "entropy_deficit_bits",
    "rank_bucket_counts",
    "bucket_null_probabilities",
    "UniformityReport",
    "uniformity_report",
    "CampaignConfig",
    "CampaignResult",
    "PopulationStats",
    "run_population_campaign",
    "permutation_histogram",
    "packed_histogram",
    "fig4_experiment",
    "Fig4Result",
    "ComplexityReport",
    "converter_complexity",
    "shuffle_complexity",
    "fit_power_law",
    "monobit_test",
    "runs_test",
    "serial_correlation",
    "permutation_chi2",
    "battery",
    "TestResult",
    "MixingCurve",
    "transposition_walk_tv",
    "shuffle_vs_walk",
    "cutoff_estimate",
    "required_samples",
    "wilson_interval",
]
