"""Statistical and structural analysis of the generators.

* :mod:`repro.analysis.derangements` — the §III-C experiment: count
  derangements among random permutations and estimate ``e ≈ n!/d_n``;
* :mod:`repro.analysis.uniformity` — chi-square / total-variation /
  entropy tests of permutation uniformity;
* :mod:`repro.analysis.distribution` — the Fig.-4 histogram of 2²⁰ random
  4-element permutations keyed by the packed 8-bit word;
* :mod:`repro.analysis.complexity` — the §II-D / §III-C complexity claims
  (O(n²) comparators/crossovers, O(n) delay) checked against real
  netlists, with least-squares exponents;
* :mod:`repro.analysis.faultcoverage` — confidence intervals and sample
  sizing for the sampled fault-injection campaigns.
"""

from repro.analysis.derangements import (
    subfactorial,
    derangement_mask,
    DerangementResult,
    derangement_experiment,
    estimate_e,
)
from repro.analysis.uniformity import (
    chi_square_uniform,
    total_variation_from_uniform,
    empirical_entropy_bits,
    UniformityReport,
    uniformity_report,
)
from repro.analysis.distribution import (
    permutation_histogram,
    packed_histogram,
    fig4_experiment,
    Fig4Result,
)
from repro.analysis.randtests import (
    monobit_test,
    runs_test,
    serial_correlation,
    permutation_chi2,
    battery,
    TestResult,
)
from repro.analysis.mixing import (
    MixingCurve,
    transposition_walk_tv,
    shuffle_vs_walk,
    cutoff_estimate,
)
from repro.analysis.complexity import (
    ComplexityReport,
    converter_complexity,
    shuffle_complexity,
    fit_power_law,
)
from repro.analysis.faultcoverage import required_samples, wilson_interval

__all__ = [
    "subfactorial",
    "derangement_mask",
    "DerangementResult",
    "derangement_experiment",
    "estimate_e",
    "chi_square_uniform",
    "total_variation_from_uniform",
    "empirical_entropy_bits",
    "UniformityReport",
    "uniformity_report",
    "permutation_histogram",
    "packed_histogram",
    "fig4_experiment",
    "Fig4Result",
    "ComplexityReport",
    "converter_complexity",
    "shuffle_complexity",
    "fit_power_law",
    "monobit_test",
    "runs_test",
    "serial_correlation",
    "permutation_chi2",
    "battery",
    "TestResult",
    "MixingCurve",
    "transposition_walk_tv",
    "shuffle_vs_walk",
    "cutoff_estimate",
    "required_samples",
    "wilson_interval",
]
