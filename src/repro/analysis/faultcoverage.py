"""Statistics for sampled fault-injection campaigns.

An exhaustive stuck-at campaign measures coverage exactly; a *sampled*
campaign (SEU cycles, bridging pairs, or ``--samples K``) only
estimates it.  The estimate deserves a confidence interval — and the
normal approximation misbehaves exactly where fault coverage lives, at
proportions near 1.  The Wilson score interval stays inside ``[0, 1]``
and keeps near-nominal coverage probability even for small samples, so
that is what the campaign reports quote.
"""

from __future__ import annotations

import math

__all__ = ["wilson_interval", "required_samples"]


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(lo, hi)`` bounds on the true proportion given
    ``successes`` out of ``trials``.  ``trials == 0`` returns the
    vacuous interval ``(0, 1)``.
    """
    if not (0 <= successes <= trials):
        raise ValueError("need 0 <= successes <= trials")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    if trials == 0:
        return (0.0, 1.0)
    # two-sided normal quantile via the error function (no scipy needed)
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def _erfinv(y: float) -> float:
    """Inverse error function by Newton refinement of a rational seed.

    Accurate to ~1e-12 over (−1, 1) — far tighter than any campaign
    needs — without importing scipy into this leaf module.
    """
    if not (-1.0 < y < 1.0):
        raise ValueError("erfinv domain is (-1, 1)")
    # Winitzki's approximation as the seed
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    t1 = 2.0 / (math.pi * a) + ln_term / 2.0
    x = math.copysign(math.sqrt(math.sqrt(t1 * t1 - ln_term / a) - t1), y)
    # two Newton steps: f(x) = erf(x) − y, f'(x) = 2/√π · exp(−x²)
    for _ in range(2):
        err = math.erf(x) - y
        x -= err * math.sqrt(math.pi) / 2.0 * math.exp(x * x)
    return x


def required_samples(
    margin: float, confidence: float = 0.95, proportion: float = 0.5
) -> int:
    """Sample size for a ± ``margin`` normal-approximation interval.

    ``proportion=0.5`` is the conservative worst case; pass the expected
    coverage for a tighter budget when prior campaigns exist.
    """
    if not (0.0 < margin < 1.0):
        raise ValueError("margin must be in (0, 1)")
    z = math.sqrt(2.0) * _erfinv(confidence)
    return math.ceil(z * z * proportion * (1.0 - proportion) / (margin * margin))
